// ComputeTeam: the OpenMP-style computing threads of the benchmark (§2).
//
// Each member core repeatedly runs the kernel over its share of the data
// (one "pass" = one parallel region with an implicit barrier).  Records
// per-pass wall durations, achieved per-core memory bandwidth, and the
// memory-stall fraction (the pmu-tools counter of Fig. 10: share of time
// the cores were limited by the memory system rather than the pipeline).
#pragma once

#include <memory>
#include <vector>

#include "hw/frequency_governor.hpp"
#include "hw/machine.hpp"
#include "hw/workload.hpp"
#include "sim/rng.hpp"
#include "sim/sync.hpp"

namespace cci::core {

class ComputeTeam {
 public:
  struct Options {
    std::vector<int> cores;
    int data_numa = 0;
    hw::KernelTraits kernel;
    double iters_per_pass = 0.0;  ///< per core
    int repetitions = 1;
    double noise_rel = 0.01;  ///< run-to-run jitter on per-pass work
  };

  ComputeTeam(hw::Machine& machine, Options options, sim::Rng& rng)
      : machine_(machine), opt_(std::move(options)), rng_(rng),
        done_(std::make_unique<sim::OneShotEvent>(machine.engine())) {}

  /// Spawn the team process; done() fires after all repetitions.
  void start() { machine_.engine().spawn(run()); }
  sim::OneShotEvent& done() { return *done_; }

  /// Wall duration of each pass (barrier to barrier).
  [[nodiscard]] const std::vector<double>& pass_durations() const { return durations_; }
  /// Achieved DRAM bandwidth per core, per pass (B/s); empty for
  /// cache-resident kernels.
  [[nodiscard]] const std::vector<double>& per_core_bandwidths() const { return bandwidths_; }
  /// Mean fraction of time the team was memory-bound (0 when compute-bound).
  [[nodiscard]] double mem_stall_fraction() const {
    return stall_samples_ > 0 ? stall_sum_ / static_cast<double>(stall_samples_) : 0.0;
  }

 private:
  sim::Coro run();

  hw::Machine& machine_;
  Options opt_;
  sim::Rng& rng_;
  std::unique_ptr<sim::OneShotEvent> done_;
  std::vector<double> durations_;
  std::vector<double> bandwidths_;
  double stall_sum_ = 0.0;
  int stall_samples_ = 0;
};

}  // namespace cci::core
