// Result serialization: JSON records for downstream analysis pipelines.
//
// Every figure bench can be replotted offline; this writer produces a
// stable, self-describing JSON document from scenarios and results (no
// third-party JSON dependency — the subset we emit is trivial).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/interference_lab.hpp"
#include "obs/metrics.hpp"

namespace cci::core {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os);
  ~JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array(const std::string& key);
  JsonWriter& end_array();
  JsonWriter& field(const std::string& key, double value);
  JsonWriter& field(const std::string& key, const std::string& value);
  JsonWriter& field(const std::string& key, int value);
  /// Open a nested object under `key`.
  JsonWriter& object_field(const std::string& key);

 private:
  void comma();
  void indent();
  std::ostream& os_;
  int depth_ = 0;
  std::vector<bool> first_in_scope_;
};

/// Serialize one scenario + its three-phase result as a JSON object.  When
/// the global obs::Registry is enabled, the record carries a "metrics"
/// object with its current snapshot, so every result is self-describing
/// telemetry-wise.
void write_result_json(std::ostream& os, const Scenario& scenario,
                       const SideBySideResult& result);

/// Emit `"metrics": {...}` into an open JSON object: counters/gauges as
/// flat values, histograms as {count, sum, mean, p50, p90, p99, max}.
void write_metrics_json(JsonWriter& w, const obs::Snapshot& snapshot);

/// Generic bench record: bench name, flat numeric fields, and (optionally)
/// a metrics snapshot.  Used by bench binaries that don't follow the
/// Scenario/SideBySideResult protocol.
void write_bench_json(std::ostream& os, const std::string& bench,
                      const std::vector<std::pair<std::string, double>>& fields,
                      const obs::Snapshot* metrics);

}  // namespace cci::core
