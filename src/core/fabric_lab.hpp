// FabricLab: multi-tenant traffic driver over a topology cluster.
//
// Where InterferenceLab reproduces the paper's single-job comm/compute
// interference on 2 nodes, FabricLab drives the *network* analogue: each
// JobSpec of the scenario is a tenant injecting bulk traffic (pairs or
// ring streams, open-loop at `offered_load` x wire rate) across the
// scenario's fat-tree/dragonfly fabric.  Reports per-tenant delivered
// bandwidth and delivery latency (vs the injection schedule, so queueing
// past the congestion knee is visible), per-link utilization summaries,
// and the fabric routing counters — the raw material of the
// job_interference and congestion_onset figures.
//
// Determinism: one fresh Cluster per run (same seed), traffic coroutines
// spawned in job/stream order, link utilization sampled at delivery
// events plus a fixed mid-injection probe grid (symmetric tenants can
// complete flows exactly at every delivery instant, so mid-grid probes
// are what observe the fabric in flight).  Runs are bitwise-reproducible
// under campaign threads,
// shard-parallel simulation and schedule exploration like every other lab.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"
#include "mpi/world.hpp"
#include "net/cluster.hpp"
#include "trace/stats.hpp"

namespace cci::core {

/// One tenant's outcome.
struct TenantReport {
  std::string label;
  double bytes = 0.0;        ///< payload bytes delivered
  double finish = 0.0;       ///< last delivery (sim seconds)
  double achieved_bw = 0.0;  ///< bytes / finish
  /// Per-message delivery latency measured against the open-loop injection
  /// schedule: delivery time - scheduled injection time.  Queueing behind
  /// congested links shows up here before bandwidth collapses.
  trace::Stats delivery_latency;
};

/// One fabric link's utilization summary, sampled at delivery events and
/// at the midpoints of the injection grid.
struct LinkReport {
  std::string name;
  double mean = 0.0;
  double peak = 0.0;
};

struct FabricReport {
  std::vector<TenantReport> tenants;  ///< scenario job order
  std::vector<LinkReport> links;      ///< Topology::links() order
  double elapsed = 0.0;               ///< last delivery across all tenants
  double total_bytes = 0.0;
  double aggregate_bw = 0.0;  ///< total_bytes / elapsed
  std::uint64_t routes = 0;   ///< fabric routing decisions this run
  std::uint64_t reroutes = 0; ///< adaptive deviations from the minimal route
  // ---- run_sharded() only (all zero after a serial run()) ------------------
  int shards = 0;            ///< shard count the fabric was carved across
  int populated_shards = 0;  ///< shards that actually ran streams
  int boundary_links = 0;    ///< cut resources exchanged at barriers
  std::uint64_t windows = 0;    ///< conservative windows executed
  std::uint64_t exchanges = 0;  ///< boundary capacity updates delivered
  std::uint64_t solver_flow_visits = 0;  ///< summed across shard solvers
  std::uint64_t events = 0;              ///< summed engine events
  [[nodiscard]] const TenantReport* tenant(std::string_view label) const;
};

class FabricLab {
 public:
  explicit FabricLab(Scenario scenario);
  ~FabricLab();

  /// Run the scenario's jobs to completion on a fresh cluster and report.
  /// A non-empty `only` runs just the tenant with that label on the same
  /// fabric — the "alone" baseline of the victim/aggressor slowdown
  /// matrix, with identical placement and routing.
  FabricReport run(std::string_view only = {});
  /// Run only the tenants whose labels appear in `labels` (empty = all):
  /// the "together" cells of the slowdown matrix pair a victim with one
  /// aggressor while every other tenant stays silent.  Placement, stream
  /// tags and buffer ids are identical across subsets.
  FabricReport run(const std::vector<std::string>& labels);
  /// Braced label lists (`run({"victim", "aggressor"})`) would otherwise be
  /// ambiguous against the string_view overload's C++20 iterator-pair
  /// constructor; list-initialization prefers this overload.
  FabricReport run(std::initializer_list<std::string> labels) {
    return run(std::vector<std::string>(labels));
  }

  /// Cross-shard fabric simulation: carve the topology at group boundaries
  /// (sim::partition_groups over Topology::group_graph), run every stream
  /// as a fluid transfer on its source node's shard over that shard's
  /// net::FabricGraph replica, and exchange the capacity of *boundary
  /// proxies* — resources the static routes of several shards share — at
  /// every window barrier (sim::ShardGroup::add_boundary_link).  The
  /// window is Topology::min_cut_delay over the links the carve actually
  /// cuts, so a dragonfly split at global links runs 3x longer windows
  /// than the generic floor and stays conservative.
  ///
  /// `shards` <= 0 takes sim::configured_shards() (CCI_SIM_SHARDS).  At
  /// shards == 1 this is the plain serial engine — no workers, proxies or
  /// barriers — and bitwise-identical across runs; at a fixed shard count
  /// > 1 runs are bitwise run-to-run deterministic (mailbox lanes and the
  /// exchange are drained in deterministic order).  Requires kMinimal
  /// routing: adaptive routing reads global utilization and the cluster
  /// RNG, neither of which survives the carve.  This is the fluid-fabric
  /// model (tx port, crossbars, links, rx port; no NIC/DMA stages), so
  /// compare run_sharded results across shard counts and against each
  /// other — not against run().
  FabricReport run_sharded(int shards = 0);

  /// Cluster of the most recent run().  Route traces are always recorded
  /// (Cluster::route_trace), so determinism tests can byte-compare the
  /// exact sequence of routing decisions.
  net::Cluster& cluster() { return *cluster_; }

 private:
  Scenario scenario_;
  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<mpi::World> world_;
};

}  // namespace cci::core
