#include "core/campaign.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sched/point.hpp"
#include "sim/shard.hpp"

namespace cci::core {

// ---- seeding ----------------------------------------------------------------

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index) {
  // SplitMix64 over the (base, index) pair: cheap, full-period, and
  // statistically independent streams for neighbouring indices.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// ---- canonical paper value lists -------------------------------------------

std::vector<int> paper_core_counts(int max_cores) {
  std::vector<int> cores{0, 1, 2, 3, 5, 8, 12, 16, 20, 24, 28, 32};
  std::vector<int> out;
  for (int c : cores)
    if (c < max_cores) out.push_back(c);
  out.push_back(max_cores);
  return out;
}

std::vector<std::size_t> paper_message_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 4; s <= (64u << 20); s *= 4) sizes.push_back(s);
  return sizes;
}

// ---- SweepSpec --------------------------------------------------------------

SweepSpec& SweepSpec::cores(std::string label, const std::vector<int>& values) {
  return axis<int>(
      std::move(label), values, [](Scenario& s, const int& v) { s.computing_cores = v; },
      [](const int& v) { return std::to_string(v); },
      [](const int& v) { return static_cast<double>(v); });
}

SweepSpec& SweepSpec::message_bytes(std::string label, const std::vector<std::size_t>& values) {
  return axis<std::size_t>(
      std::move(label), values, [](Scenario& s, const std::size_t& v) { s.message_bytes = v; },
      [](const std::size_t& v) { return std::to_string(v); },
      [](const std::size_t& v) { return static_cast<double>(v); });
}

SweepSpec& SweepSpec::comm_thread_placement(std::string label,
                                            const std::vector<Placement>& values) {
  return axis<Placement>(
      std::move(label), values, [](Scenario& s, const Placement& v) { s.comm_thread = v; },
      [](const Placement& v) { return std::string(to_string(v)); },
      [](const Placement& v) { return static_cast<double>(static_cast<int>(v)); });
}

SweepSpec& SweepSpec::data_placement(std::string label, const std::vector<Placement>& values) {
  return axis<Placement>(
      std::move(label), values, [](Scenario& s, const Placement& v) { s.data = v; },
      [](const Placement& v) { return std::string(to_string(v)); },
      [](const Placement& v) { return static_cast<double>(static_cast<int>(v)); });
}

SweepSpec& SweepSpec::kernels(
    std::string label, const std::vector<std::pair<std::string, hw::KernelTraits>>& values) {
  using Entry = std::pair<std::string, hw::KernelTraits>;
  return axis<Entry>(
      std::move(label), values, [](Scenario& s, const Entry& v) { s.kernel = v.second; },
      [](const Entry& v) { return v.first; });
}

SweepSpec& SweepSpec::values(std::string label, const std::vector<double>& vals,
                             std::function<void(Scenario&, double)> set) {
  return axis<double>(
      std::move(label), vals,
      [set](Scenario& s, const double& v) { set(s, v); },
      [](const double& v) { return trace::fmt_g(v); }, [](const double& v) { return v; });
}

std::vector<std::string> SweepSpec::axis_labels() const {
  std::vector<std::string> out;
  out.reserve(axes_.size());
  for (const Axis& ax : axes_) out.push_back(ax.label);
  return out;
}

std::size_t SweepSpec::point_count() const {
  std::size_t n = 1;
  for (const Axis& ax : axes_) n *= ax.points.size();
  return n;
}

std::vector<SweepPoint> SweepSpec::expand(const std::uint64_t* base_seed_override) const {
  const std::size_t total = point_count();
  const std::uint64_t base_seed =
      base_seed_override != nullptr ? *base_seed_override : base_.seed;
  std::vector<SweepPoint> out;
  out.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    SweepPoint p;
    p.index = index;
    p.scenario = base_;
    p.labels.reserve(axes_.size());
    p.numeric.reserve(axes_.size());
    // Row-major decomposition: first axis slowest, last axis fastest —
    // the nesting order of the loops this replaces.
    std::size_t rem = index;
    std::vector<std::size_t> pos(axes_.size(), 0);
    for (std::size_t a = axes_.size(); a-- > 0;) {
      pos[a] = rem % axes_[a].points.size();
      rem /= axes_[a].points.size();
    }
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const BoundValue& bv = axes_[a].points[pos[a]];
      bv.apply(p.scenario);
      p.labels.push_back(bv.label);
      p.numeric.push_back(bv.numeric);
    }
    if (seed_policy_ == SeedPolicy::kPerPoint)
      p.scenario.seed = mix_seed(base_seed, index);
    else if (base_seed_override != nullptr)
      p.scenario.seed = base_seed;
    out.push_back(std::move(p));
  }
  return out;
}

// ---- Campaign ---------------------------------------------------------------

Campaign& Campaign::column(std::string label, Metric fn) {
  columns_.push_back({std::move(label), std::move(fn), nullptr});
  return *this;
}

Campaign& Campaign::column(std::string label, int digits, Metric fn) {
  return column(std::move(label),
                [digits](const SweepPoint&, double v) { return trace::fmt(v, digits); },
                std::move(fn));
}

Campaign& Campaign::column(std::string label, Formatter format, Metric fn) {
  columns_.push_back({std::move(label), std::move(fn), std::move(format)});
  return *this;
}

Campaign& Campaign::evaluator(std::string id, Evaluator fn) {
  evaluator_id_ = std::move(id);
  evaluator_ = std::move(fn);
  return *this;
}

Campaign& Campaign::with_attribution() {
  if (!attribution_) {
    attribution_ = true;
    evaluator_id_ += "+attrib";
  }
  return *this;
}

std::vector<std::string> Campaign::column_labels() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.label);
  return out;
}

std::vector<double> Campaign::evaluate(const SweepPoint& point, double* sim_seconds) const {
  if (sim_seconds != nullptr) *sim_seconds = 0.0;
  if (evaluator_) {
    std::vector<double> out = evaluator_(point);
    if (out.size() != columns_.size())
      throw std::runtime_error("campaign '" + name_ + "': evaluator returned " +
                               std::to_string(out.size()) + " values for " +
                               std::to_string(columns_.size()) + " columns");
    return out;
  }
  InterferenceLab lab(point.scenario);
  if (attribution_) lab.set_attribution(true);
  SideBySideResult r = lab.run();
  if (sim_seconds != nullptr) *sim_seconds = lab.cluster().engine().now();
  std::vector<double> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.fn(point, r));
  return out;
}

std::string Campaign::format_cell(std::size_t col, const SweepPoint& point,
                                  double value) const {
  const Column& c = columns_.at(col);
  return c.format ? c.format(point, value) : trace::fmt_g(value);
}

Campaign::Metric Campaign::latency_together_us() {
  return [](const SweepPoint&, const SideBySideResult& r) {
    return r.comm_together.latency.median * 1e6;
  };
}
Campaign::Metric Campaign::latency_ratio() {
  return [](const SweepPoint&, const SideBySideResult& r) {
    return r.comm_alone.latency.median > 0
               ? r.comm_together.latency.median / r.comm_alone.latency.median
               : 0.0;
  };
}
Campaign::Metric Campaign::bandwidth_together_gbps() {
  return [](const SweepPoint&, const SideBySideResult& r) {
    return r.comm_together.bandwidth.median / 1e9;
  };
}
Campaign::Metric Campaign::bandwidth_ratio() {
  return [](const SweepPoint&, const SideBySideResult& r) {
    return r.comm_alone.bandwidth.median > 0
               ? r.comm_together.bandwidth.median / r.comm_alone.bandwidth.median
               : 0.0;
  };
}
Campaign::Metric Campaign::stream_per_core_gbps() {
  return [](const SweepPoint&, const SideBySideResult& r) {
    return r.compute_together.per_core_bandwidth.median / 1e9;
  };
}
Campaign::Metric Campaign::stall_fraction() {
  return [](const SweepPoint&, const SideBySideResult& r) {
    return r.compute_together.mem_stall_fraction;
  };
}
Campaign::Metric Campaign::comm_slowdown_from_compute() {
  return [](const SweepPoint&, const SideBySideResult& r) {
    return r.attribution.slowdown(sim::kClassComm, sim::kClassCompute);
  };
}
Campaign::Metric Campaign::compute_slowdown_from_comm() {
  return [](const SweepPoint&, const SideBySideResult& r) {
    return r.attribution.slowdown(sim::kClassCompute, sim::kClassComm);
  };
}
Campaign::Metric Campaign::comm_contended_fraction() {
  return [](const SweepPoint&, const SideBySideResult& r) {
    return r.attribution.contended_fraction(sim::kClassComm);
  };
}
Campaign::Metric Campaign::compute_contended_fraction() {
  return [](const SweepPoint&, const SideBySideResult& r) {
    return r.attribution.contended_fraction(sim::kClassCompute);
  };
}

// ---- cache ------------------------------------------------------------------

namespace {

void put(std::ostream& os, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << key << '=' << buf << ';';
}
void put(std::ostream& os, const char* key, const std::string& v) {
  os << key << '=' << v << ';';
}
template <typename Int>
void put_int(std::ostream& os, const char* key, Int v) {
  os << key << '=' << v << ';';
}

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::filesystem::path entry_path(const std::string& dir, std::uint64_t key) {
  return std::filesystem::path(dir) / (hex16(key) + ".json");
}

/// Load a cache entry; true (and `values` filled) only when the file
/// exists, carries the same schema + key, and has exactly `columns`
/// values.  Doubles round-trip through %.17g, so a cache hit reproduces
/// the original table bit-for-bit.
bool load_cache_entry(const std::string& dir, std::uint64_t key, std::size_t columns,
                      std::vector<double>& values) {
  CCI_SCHED_POINT(kCacheRead, key);
  std::ifstream is(entry_path(dir, key));
  if (!is) return false;
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string doc = buffer.str();
  if (doc.find("\"schema\": " + std::to_string(kCampaignSchemaVersion)) == std::string::npos)
    return false;
  if (doc.find("\"key\": \"" + hex16(key) + "\"") == std::string::npos) return false;
  const std::size_t open = doc.find("\"values\": [");
  if (open == std::string::npos) return false;
  const char* p = doc.c_str() + open + 11;
  values.clear();
  while (true) {
    while (*p == ' ' || *p == ',' || *p == '\n') ++p;
    if (*p == ']' || *p == '\0') break;
    char* end = nullptr;
    double v = std::strtod(p, &end);
    if (end == p) return false;
    values.push_back(v);
    p = end;
  }
  return values.size() == columns;
}

void store_cache_entry(const std::string& dir, std::uint64_t key,
                       const std::string& campaign, const std::vector<double>& values) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path path = entry_path(dir, key);
  // Unique tmp name per writer: two processes (or shards, or threads)
  // storing the same point must not interleave writes into one shared tmp
  // file — each writes its own and the final rename is atomic, so the
  // published entry is always one writer's complete bytes.  Both writers
  // produce identical contents anyway (that is the determinism contract),
  // so last-rename-wins is harmless.
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(static_cast<long long>(getpid())) + "." +
      std::to_string(tmp_seq.fetch_add(1, std::memory_order_relaxed));
  CCI_SCHED_POINT(kCacheWrite, key);
  {
    std::ofstream os(tmp);
    if (!os) return;  // cache is best-effort: an unwritable dir just means re-runs
    os << "{\n  \"schema\": " << kCampaignSchemaVersion << ",\n  \"key\": \"" << hex16(key)
       << "\",\n  \"campaign\": \"" << campaign << "\",\n  \"values\": [";
    for (std::size_t i = 0; i < values.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", values[i]);
      os << (i ? ", " : "") << buf;
    }
    os << "]\n}\n";
  }
  CCI_SCHED_POINT(kCacheRename, key);
  std::filesystem::rename(tmp, path, ec);
}

/// Remove tmp files left behind by writers that died between write and
/// rename.  Best-effort on purpose: sweeping a *live* sibling's tmp only
/// costs that sibling a silently-uncached point (its rename fails with an
/// ignored error code), never a corrupt entry.  Returns the count removed.
std::size_t sweep_stale_tmp(const std::string& dir) {
  std::error_code ec;
  std::size_t swept = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(".json.tmp") == std::string::npos) continue;
    std::error_code rm;
    if (std::filesystem::remove(entry.path(), rm)) ++swept;
  }
  return swept;
}

}  // namespace

void serialize_scenario(std::ostream& os, const Scenario& s) {
  const hw::MachineConfig& m = s.machine;
  put(os, "m.name", m.name);
  put_int(os, "m.sockets", m.sockets);
  put_int(os, "m.numa_per_socket", m.numa_per_socket);
  put_int(os, "m.cores_per_numa", m.cores_per_numa);
  put_int(os, "m.nic_numa", m.nic_numa);
  put(os, "m.core_freq_min_hz", m.core_freq_min_hz);
  put(os, "m.core_freq_nominal_hz", m.core_freq_nominal_hz);
  auto put_turbo = [&os](const char* key, const std::vector<hw::TurboStep>& steps) {
    os << key << "=[";
    for (const hw::TurboStep& t : steps) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%d:%.17g,", t.max_active_cores, t.freq_hz);
      os << buf;
    }
    os << "];";
  };
  put_turbo("m.turbo_scalar", m.turbo_scalar);
  put_turbo("m.turbo_avx2", m.turbo_avx2);
  put_turbo("m.turbo_avx512", m.turbo_avx512);
  put(os, "m.comm_core_freq_hz", m.comm_core_freq_hz);
  put(os, "m.dvfs_transition_latency", m.dvfs_transition_latency);
  put(os, "m.uncore_freq_min_hz", m.uncore_freq_min_hz);
  put(os, "m.uncore_freq_max_hz", m.uncore_freq_max_hz);
  put(os, "m.uncore_min_mem_scale", m.uncore_min_mem_scale);
  put(os, "m.uncore_latency_penalty", m.uncore_latency_penalty);
  put(os, "m.flops_per_cycle_scalar", m.flops_per_cycle_scalar);
  put(os, "m.flops_per_cycle_avx2", m.flops_per_cycle_avx2);
  put(os, "m.flops_per_cycle_avx512", m.flops_per_cycle_avx512);
  put(os, "m.mem_bw_per_numa", m.mem_bw_per_numa);
  put(os, "m.per_core_mem_bw", m.per_core_mem_bw);
  put(os, "m.cross_socket_bw", m.cross_socket_bw);
  put(os, "m.intra_socket_bw", m.intra_socket_bw);
  put(os, "m.llc_bytes_per_socket", m.llc_bytes_per_socket);
  put(os, "m.mem_latency", m.mem_latency);
  put(os, "m.cross_socket_latency", m.cross_socket_latency);
  put(os, "m.queueing_kappa", m.queueing_kappa);
  put(os, "m.queueing_pressure_clamp", m.queueing_pressure_clamp);
  put(os, "m.nic_dma_weight", m.nic_dma_weight);

  const net::NetworkParams& n = s.network;
  put(os, "n.fabric", n.fabric);
  put(os, "n.wire_bw", n.wire_bw);
  put(os, "n.wire_latency", n.wire_latency);
  put(os, "n.dma_bw_max_uncore", n.dma_bw_max_uncore);
  put(os, "n.dma_bw_min_uncore", n.dma_bw_min_uncore);
  put(os, "n.send_overhead_cycles", n.send_overhead_cycles);
  put(os, "n.recv_overhead_cycles", n.recv_overhead_cycles);
  put(os, "n.pio_cycles_per_byte", n.pio_cycles_per_byte);
  put_int(os, "n.eager_threshold", n.eager_threshold);
  put_int(os, "n.pio_latency_cutoff", n.pio_latency_cutoff);
  put_int(os, "n.pio_chunk", n.pio_chunk);
  put_int(os, "n.pio_socket_crossings", n.pio_socket_crossings);
  put(os, "n.pio_base_latency", n.pio_base_latency);
  put(os, "n.control_latency", n.control_latency);
  put(os, "n.registration_base", n.registration_base);
  put(os, "n.registration_per_byte", n.registration_per_byte);
  put(os, "n.crc_cycles_per_byte", n.crc_cycles_per_byte);
  put(os, "n.noise_rel", n.noise_rel);

  const hw::KernelTraits& k = s.kernel;
  put(os, "k.name", k.name);
  put(os, "k.flops_per_iter", k.flops_per_iter);
  put(os, "k.bytes_per_iter", k.bytes_per_iter);
  put_int(os, "k.vec", static_cast<int>(k.vec));
  put(os, "k.working_set_bytes", k.working_set_bytes);

  put_int(os, "s.comm_thread", static_cast<int>(s.comm_thread));
  put_int(os, "s.data", static_cast<int>(s.data));
  put_int(os, "s.computing_cores", s.computing_cores);
  put_int(os, "s.message_bytes", s.message_bytes);
  put_int(os, "s.pingpong_iterations", s.pingpong_iterations);
  put_int(os, "s.pingpong_warmup", s.pingpong_warmup);
  put_int(os, "s.compute_repetitions", s.compute_repetitions);
  put(os, "s.target_pass_seconds", s.target_pass_seconds);
  put_int(os, "s.seed", s.seed);

  // Schema v3: fabric topology and the multi-job tenant list.
  s.topology.serialize(os);
  put_int(os, "s.jobs", s.jobs.size());
  for (const JobSpec& j : s.jobs) {
    put(os, "j.label", j.label);
    os << "j.nodes=[";
    for (int node : j.nodes) os << node << ',';
    os << "];";
    put_int(os, "j.message_bytes", j.message_bytes);
    put_int(os, "j.iterations", j.iterations);
    put(os, "j.offered_load", j.offered_load);
    put_int(os, "j.pattern", static_cast<int>(j.pattern));
  }
}

std::uint64_t cache_key(const Campaign& campaign, const SweepPoint& point) {
  std::ostringstream os;
  os << "cci-campaign-v" << kCampaignSchemaVersion << ';';
  // Shard-parallel simulation is bitwise-deterministic at a *fixed* shard
  // count, but gauges/histograms (heap depth, per-shard maxima) legitimately
  // differ across counts — results cached at one shard setting must not be
  // served for another.
  put_int(os, "sim_shards", sim::configured_shards());
  os << "eval=" << campaign.evaluator_id() << ';';
  os << "axes=";
  for (const std::string& l : campaign.spec().axis_labels()) os << l << ',';
  os << ";cols=";
  for (const std::string& l : campaign.column_labels()) os << l << ',';
  os << ";point=";
  for (const std::string& l : point.labels) os << l << ',';
  os << ';';
  serialize_scenario(os, point.scenario);
  return fnv1a(os.str());
}

// ---- engine -----------------------------------------------------------------

trace::Table CampaignRun::table(const Campaign& campaign) const {
  trace::Table t(headers);
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::vector<std::string> cells = points[i].labels;
    for (std::size_t c = 0; c < values[i].size(); ++c)
      cells.push_back(campaign.format_cell(c, points[i], values[i][c]));
    t.add_text_row(cells);
  }
  return t;
}

void CampaignRun::write_timeline_csv(std::ostream& os, const std::string& campaign_name,
                                     bool with_header) const {
  bool header = with_header;
  for (std::size_t i = 0; i < timelines.size() && i < points.size(); ++i) {
    // The prefix carries the run identity so shard/figure outputs simply
    // concatenate; %zu keeps the grid index format locale-free.
    char idx[32];
    std::snprintf(idx, sizeof idx, "%zu", points[i].index);
    timelines[i].write_csv(os, "campaign,point", campaign_name + "," + idx, header);
    header = false;
  }
}

namespace {

/// Minimal work-stealing deques: each worker pops from the front of its
/// own queue and steals from the back of a victim's.  Points are
/// coarse-grained (one full simulation each), so a mutex per deque costs
/// nothing measurable while keeping the scheduler obviously correct.
class StealingQueues {
 public:
  StealingQueues(std::size_t workers, const std::vector<std::size_t>& work)
      : queues_(workers) {
    for (std::size_t i = 0; i < work.size(); ++i)
      queues_[i % workers].items.push_back(work[i]);
  }

  bool next(std::size_t worker, std::size_t& out) {
    CCI_SCHED_POINT(kQueuePop, worker);
    if (pop_front(worker, out)) return true;
    for (std::size_t off = 1; off < queues_.size(); ++off) {
      const std::size_t victim = (worker + off) % queues_.size();
      CCI_SCHED_POINT(kQueueSteal, victim);
      if (pop_back(victim, out)) return true;
    }
    return false;
  }

 private:
  struct Deque {
    std::mutex m;
    std::deque<std::size_t> items;
  };

  bool pop_front(std::size_t q, std::size_t& out) {
    std::lock_guard<std::mutex> lock(queues_[q].m);
    if (queues_[q].items.empty()) return false;
    out = queues_[q].items.front();
    queues_[q].items.pop_front();
    return true;
  }
  bool pop_back(std::size_t q, std::size_t& out) {
    std::lock_guard<std::mutex> lock(queues_[q].m);
    if (queues_[q].items.empty()) return false;
    out = queues_[q].items.back();
    queues_[q].items.pop_back();
    return true;
  }

  std::vector<Deque> queues_;
};

}  // namespace

CampaignEngine::CampaignEngine(CampaignOptions options) : options_(std::move(options)) {
  if (options_.jobs < 1) options_.jobs = 1;
  if (options_.shard_count < 1) options_.shard_count = 1;
  if (options_.shard_index < 0 || options_.shard_index >= options_.shard_count)
    throw std::invalid_argument("campaign: shard index out of range");
}

CampaignRun CampaignEngine::run(const Campaign& campaign) {
  const SweepSpec& spec = campaign.spec();
  const std::uint64_t* seed_override =
      options_.override_base_seed ? &options_.base_seed : nullptr;
  std::vector<SweepPoint> grid = spec.expand(seed_override);

  CampaignRun run;
  run.grid_total = grid.size();
  run.headers = spec.axis_labels();
  for (const std::string& l : campaign.column_labels()) run.headers.push_back(l);
  for (SweepPoint& p : grid)
    if (static_cast<int>(p.index % static_cast<std::size_t>(options_.shard_count)) ==
        options_.shard_index)
      run.points.push_back(std::move(p));

  const std::size_t n = run.points.size();
  run.values.assign(n, {});
  run.from_cache.assign(n, false);
  std::vector<double> sim_secs(n, 0.0);
  std::vector<std::uint64_t> keys(n, 0);

  // Resolve cached points first; only the misses hit the pool.
  std::size_t tmp_swept = 0;
  if (!options_.cache_dir.empty()) tmp_swept = sweep_stale_tmp(options_.cache_dir);
  std::vector<std::size_t> misses;
  misses.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!options_.cache_dir.empty()) {
      keys[i] = cache_key(campaign, run.points[i]);
      if (load_cache_entry(options_.cache_dir, keys[i], campaign.column_count(),
                           run.values[i])) {
        run.from_cache[i] = true;
        continue;
      }
    }
    misses.push_back(i);
  }

  // Time-resolved mode: every executed point gets a fresh, enabled scratch
  // registry plus an ambient RunSampling naming its private TimelineStore.
  // Fresh-per-point registries are what make the timeline deterministic:
  // no gauge state or sampler channel survives from a neighbouring point,
  // so the bytes depend only on the point itself — not on jobs, sharding,
  // or execution order.  The scratch is folded into `merge_into` afterwards
  // (only if that registry is enabled: merge_from writes raw values, and a
  // disabled process registry must stay bitwise-identical to a pre-timeline
  // run).
  const bool timeline_on = options_.timeline_period > 0.0;
  if (timeline_on) run.timelines.resize(n);
  auto evaluate_point = [&](std::size_t i, obs::Registry* merge_into) {
    if (!timeline_on) {
      run.values[i] = campaign.evaluate(run.points[i], &sim_secs[i]);
      return;
    }
    obs::Registry point_reg;
    point_reg.set_enabled(true);
    obs::RunSampling rs;
    rs.timeline_period = options_.timeline_period;
    rs.timeline = &run.timelines[i];
    rs.attribution = campaign.attribution();
    {
      obs::Registry::ScopedThreadLocal tls(point_reg);
      obs::ScopedRunSampling ambient(rs);
      run.values[i] = campaign.evaluate(run.points[i], &sim_secs[i]);
    }
    if (merge_into != nullptr && merge_into->enabled()) merge_into->merge_from(point_reg);
  };

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(options_.jobs), misses.size());
  if (workers <= 1) {
    // Inline execution feeds the process-wide obs registry directly —
    // byte-identical side effects to the historical hand-written loops.
    for (std::size_t i : misses) evaluate_point(i, &obs::Registry::process());
  } else {
    StealingQueues queues(workers, misses);
    std::vector<std::unique_ptr<obs::Registry>> scratch(workers);
    const bool metrics_on = obs::Registry::process().enabled();
    for (auto& r : scratch) {
      r = std::make_unique<obs::Registry>();
      r->set_enabled(metrics_on);
    }
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> threads;
    threads.reserve(workers);
#ifdef CCI_SCHED
    std::vector<std::string> worker_names(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      worker_names[w] = "campaign.worker." + std::to_string(w);
      sched::expect_thread(worker_names[w].c_str());
    }
#endif
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
#ifdef CCI_SCHED
        sched::ThreadScope sched_scope(worker_names[w].c_str());
#endif
        obs::Registry::ScopedThreadLocal tls(*scratch[w]);
        std::size_t idx = 0;
        while (queues.next(w, idx)) {
          try {
            evaluate_point(idx, scratch[w].get());
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      });
    }
#ifdef CCI_SCHED
    for (std::size_t w = 0; w < workers; ++w)
      sched::await_thread_exit(worker_names[w].c_str());
#endif
    {
      CCI_SCHED_BLOCKED_SCOPE();
      for (std::thread& t : threads) t.join();
    }
    if (first_error) std::rethrow_exception(first_error);
    // Deterministic fold-back: the merge operations are commutative and
    // integer-exact, so the process totals never depend on which worker
    // ran which point.
    for (const auto& r : scratch) obs::Registry::process().merge_from(*r);
  }

  run.executed = misses.size();
  run.cached = n - misses.size();

  if (!options_.cache_dir.empty())
    for (std::size_t i : misses)
      store_cache_entry(options_.cache_dir, keys[i], campaign.name(), run.values[i]);

  points_total_ += n;
  points_executed_ += run.executed;
  points_cached_ += run.cached;
  obs::Registry& reg = obs::Registry::process();
  reg.counter("campaign.points_total").add(static_cast<double>(n));
  reg.counter("campaign.points_executed").add(static_cast<double>(run.executed));
  reg.counter("campaign.points_cached").add(static_cast<double>(run.cached));
  if (tmp_swept > 0)
    reg.counter("campaign.cache_tmp_swept").add(static_cast<double>(tmp_swept));
  obs::Tracer& tracer = reg.tracer();
  if (tracer.on()) {
    const obs::TrackId track = tracer.track("campaign.points");
    for (std::size_t i = 0; i < n; ++i)
      if (!run.from_cache[i] && sim_secs[i] > 0.0)
        tracer.span(track, campaign.name() + "/" + std::to_string(run.points[i].index), 0.0,
                    sim_secs[i]);
  }
  return run;
}

}  // namespace cci::core
