#include "core/fabric_lab.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "net/fabric_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/timeline.hpp"
#include "sim/coro.hpp"
#include "sim/flow_model.hpp"
#include "sim/maxmin.hpp"
#include "sim/partition.hpp"
#include "sim/shard.hpp"

namespace cci::core {

namespace {

/// One unidirectional bulk stream of a tenant.
struct StreamSpec {
  int src_rank = 0;
  int dst_rank = 0;
  std::size_t bytes = 0;
  int iterations = 0;
  double gap = 0.0;  ///< open-loop injection period (0 = back-to-back)
  int tag = 0;
  std::uint64_t buffer_id = 0;
  std::size_t tenant = 0;
};

struct TenantAccum {
  double bytes = 0.0;
  double finish = 0.0;
  std::vector<double> latencies;
};

struct LinkAccum {
  double sum = 0.0;
  double peak = 0.0;
  std::uint64_t n = 0;
};

/// Shared per-run state the stream coroutines write into.  Owned by run()
/// and alive until the engine drains, so raw pointers in coroutines are
/// safe (same lifetime discipline as the labs' teams).
struct RunState {
  std::vector<TenantAccum> tenants;
  std::vector<sim::Resource*> links;
  std::vector<LinkAccum> link_acc;
  std::vector<obs::Histogram*> link_hist;
  std::uint64_t remaining = 0;  ///< deliveries still expected this run

  void sample_links() {
    for (std::size_t li = 0; li < links.size(); ++li) {
      const double u = links[li]->utilization();
      link_acc[li].sum += u;
      link_acc[li].peak = std::max(link_acc[li].peak, u);
      ++link_acc[li].n;
      link_hist[li]->record(u);
    }
  }
};

sim::Coro sender(mpi::World& w, StreamSpec s, int data_numa) {
  mpi::MsgView msg{s.bytes, data_numa, s.buffer_id};
  for (int i = 0; i < s.iterations; ++i) {
    const double due = static_cast<double>(i) * s.gap;
    if (w.engine().now() < due) co_await w.engine().sleep_until(due);
    co_await *w.isend(s.src_rank, s.dst_rank, s.tag, msg);
  }
}

sim::Coro receiver(mpi::World& w, StreamSpec s, int data_numa, RunState* st) {
  mpi::MsgView msg{s.bytes, data_numa, s.buffer_id + 0x1000};
  TenantAccum& acc = st->tenants[s.tenant];
  for (int i = 0; i < s.iterations; ++i) {
    co_await *w.irecv(s.dst_rank, s.src_rank, s.tag, msg);
    const double now = w.engine().now();
    acc.bytes += static_cast<double>(s.bytes);
    acc.finish = std::max(acc.finish, now);
    acc.latencies.push_back(now - static_cast<double>(i) * s.gap);
    // Sample every fabric link at this delivery: deterministic (event
    // order is), and concentrated where utilization actually changes.
    st->sample_links();
    --st->remaining;
  }
}

/// Symmetric streams register and complete their flows at identical
/// instants, so delivery-event samples can land exactly where every flow
/// has just deregistered and the fabric reads idle.  This probe samples at
/// the midpoints of the injection grid — deterministically mid-flight —
/// and keeps going until the last expected delivery (transfers stretch
/// far past their injection slot once links congest, so a fixed probe
/// count would miss exactly the interesting part of the run).  Pure timer
/// events: it never touches a flow or the RNG.
sim::Coro link_probe(sim::Engine& eng, double period, RunState* st) {
  for (int i = 0; st->remaining > 0; ++i) {
    co_await eng.sleep_until((static_cast<double>(i) + 0.5) * period);
    if (st->remaining == 0) break;
    st->sample_links();
  }
}

/// Streams of one job under its traffic pattern.
std::vector<std::pair<int, int>> stream_pairs(const JobSpec& job) {
  std::vector<std::pair<int, int>> pairs;
  const int n = static_cast<int>(job.nodes.size());
  if (n < 2) return pairs;
  if (job.pattern == TrafficPattern::kPairs) {
    for (int r = 0; r + 1 < n; r += 2) pairs.emplace_back(r, r + 1);
  } else {  // kRing
    for (int r = 0; r < n; ++r) pairs.emplace_back(r, (r + 1) % n);
  }
  return pairs;
}

}  // namespace

const TenantReport* FabricReport::tenant(std::string_view label) const {
  for (const TenantReport& t : tenants)
    if (t.label == label) return &t;
  return nullptr;
}

FabricLab::FabricLab(Scenario scenario) : scenario_(std::move(scenario)) {}

FabricLab::~FabricLab() = default;

FabricReport FabricLab::run(std::string_view only) {
  std::vector<std::string> labels;
  if (!only.empty()) labels.emplace_back(only);
  return run(labels);
}

FabricReport FabricLab::run(const std::vector<std::string>& labels) {
  std::vector<JobSpec> jobs = scenario_.jobs;
  if (jobs.empty()) {
    JobSpec j;
    j.nodes = {0, 1};
    jobs.push_back(std::move(j));
  }
  int nodes = 2;
  for (const JobSpec& j : jobs)
    for (int n : j.nodes) nodes = std::max(nodes, n + 1);

  cluster_ = std::make_unique<net::Cluster>(net::ClusterSpec{
      scenario_.machine, scenario_.network, scenario_.topology, nodes, scenario_.seed});
  cluster_->enable_route_trace(true);

  // All jobs' ranks exist even when `only` restricts the traffic, so the
  // alone/together runs share placement, comm cores and routing state.
  std::vector<mpi::RankConfig> ranks;
  std::vector<std::vector<int>> world_rank(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j)
    for (int node : jobs[j].nodes) {
      world_rank[j].push_back(static_cast<int>(ranks.size()));
      ranks.push_back({node, -1});
    }
  world_ = std::make_unique<mpi::World>(*cluster_, std::move(ranks));

  RunState st;
  st.tenants.resize(jobs.size());
  st.links = cluster_->fabric_links();
  st.link_acc.resize(st.links.size());
  st.link_hist.reserve(st.links.size());
  for (sim::Resource* r : st.links)
    st.link_hist.push_back(
        &obs::Registry::global().histogram("net." + r->name() + ".utilization"));

  const double wire_rate = scenario_.network.wire_bw;
  int next_tag = 1000;
  int next_buffer = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const JobSpec& job = jobs[j];
    // Tag/buffer ids advance for skipped jobs too: stream identities are
    // identical between alone and together runs.
    for (auto [src, dst] : stream_pairs(job)) {
      StreamSpec s;
      s.src_rank = world_rank[j][static_cast<std::size_t>(src)];
      s.dst_rank = world_rank[j][static_cast<std::size_t>(dst)];
      s.bytes = job.message_bytes;
      s.iterations = job.iterations;
      s.gap = job.offered_load > 0.0
                  ? static_cast<double>(job.message_bytes) / (wire_rate * job.offered_load)
                  : 0.0;
      s.tag = next_tag;
      next_tag += 2;
      s.buffer_id = 0x5000 + static_cast<std::uint64_t>(next_buffer++);
      s.tenant = j;
      if (!labels.empty() &&
          std::find(labels.begin(), labels.end(), job.label) == labels.end())
        continue;
      const int numa = scenario_.machine.nic_numa;
      st.remaining += static_cast<std::uint64_t>(job.iterations);
      world_->engine().spawn(sender(*world_, s, numa));
      world_->engine().spawn(receiver(*world_, s, numa, &st));
    }
  }
  // The probe grid derives from every tenant — silenced ones too — so the
  // alone/together runs of the slowdown matrix sample identical instants.
  if (!st.links.empty() && st.remaining > 0) {
    double period = 0.0;
    for (const JobSpec& job : jobs) {
      if (job.offered_load <= 0.0 || job.iterations <= 0) continue;
      if (stream_pairs(job).empty()) continue;
      const double gap =
          static_cast<double>(job.message_bytes) / (wire_rate * job.offered_load);
      period = period > 0.0 ? std::min(period, gap) : gap;
    }
    if (period > 0.0)
      world_->engine().spawn(link_probe(world_->engine(), period, &st));
  }
  cluster_->engine().run();

  FabricReport report;
  report.tenants.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    TenantReport t;
    t.label = jobs[j].label;
    t.bytes = st.tenants[j].bytes;
    t.finish = st.tenants[j].finish;
    t.achieved_bw = t.finish > 0.0 ? t.bytes / t.finish : 0.0;
    t.delivery_latency = trace::Stats::of(std::move(st.tenants[j].latencies));
    report.total_bytes += t.bytes;
    report.elapsed = std::max(report.elapsed, t.finish);
    report.tenants.push_back(std::move(t));
  }
  report.aggregate_bw = report.elapsed > 0.0 ? report.total_bytes / report.elapsed : 0.0;
  report.links.reserve(st.links.size());
  for (std::size_t li = 0; li < st.links.size(); ++li) {
    LinkReport lr;
    lr.name = st.links[li]->name();
    lr.mean = st.link_acc[li].n > 0
                  ? st.link_acc[li].sum / static_cast<double>(st.link_acc[li].n)
                  : 0.0;
    lr.peak = st.link_acc[li].peak;
    report.links.push_back(std::move(lr));
  }
  // Routing counters from the always-on route trace, so they are exact
  // whether or not the obs registry is enabled.  Decisions evicted from
  // the trace ring still count as routes; only their reroute class is
  // unknown (minimal-routing runs never reroute anyway).
  report.routes = cluster_->route_trace_dropped();
  const net::Topology& topo = cluster_->topology();
  for (const net::Cluster::RouteChoice& rc : cluster_->route_trace()) {
    ++report.routes;
    switch (topo.kind()) {
      case net::Topology::Kind::kSingleSwitch:
        break;
      case net::Topology::Kind::kFatTree: {
        const int ls = topo.host_switch(rc.src);
        const int ld = topo.host_switch(rc.dst);
        if (ls != ld && rc.via != (ls + ld) % (topo.param_k() / 2)) ++report.reroutes;
        break;
      }
      case net::Topology::Kind::kDragonfly:
        if (rc.via >= 0) ++report.reroutes;
        break;
    }
  }
  return report;
}

namespace {

/// Per-shard state of a run_sharded() fluid simulation.  Built and torn
/// down inside with_shard() so pooled frames, metric handles and timeline
/// blocks bind to the worker thread.
struct FluidShard {
  std::unique_ptr<net::FabricGraph> fabric;
  std::unique_ptr<sim::FlowModel> model;
  std::unique_ptr<obs::TimelineStore> store;  ///< multi-shard sampling only
  std::unique_ptr<obs::Sampler> sampler;
  std::vector<TenantAccum> tenants;
  std::vector<double> link_peak;  ///< per links() index, load / base capacity

  /// Local fabric peak at a delivery event.  Loads are read against the
  /// *base* capacity: a boundary replica throttled by remote load would
  /// otherwise read utilization ~1 at any load.
  void sample_links() {
    const int links = static_cast<int>(link_peak.size());
    for (int li = 0; li < links; ++li) {
      const int key = fabric->link_key(li);
      const double u = fabric->at(key)->load() / fabric->base_capacity(key);
      link_peak[static_cast<std::size_t>(li)] =
          std::max(link_peak[static_cast<std::size_t>(li)], u);
    }
  }
};

/// One open-loop fluid stream: each message is one activity demanding
/// every resource of its static minimal route, injected on run()'s
/// schedule (sleep to the slot, then send to completion) with delivery
/// accounting at completion.
sim::Coro fluid_stream(sim::Engine& eng, FluidShard* fs, StreamSpec s,
                       std::vector<sim::Resource*> path, sim::LabelId label) {
  TenantAccum& acc = fs->tenants[s.tenant];
  for (int i = 0; i < s.iterations; ++i) {
    const double due = static_cast<double>(i) * s.gap;
    if (eng.now() < due) co_await eng.sleep_until(due);
    sim::ActivitySpec spec;
    spec.label = label;
    spec.work = static_cast<double>(s.bytes);
    for (sim::Resource* r : path) spec.demands.push_back({r, 1.0});
    co_await *fs->model->start(spec);
    const double now = eng.now();
    acc.bytes += static_cast<double>(s.bytes);
    acc.finish = std::max(acc.finish, now);
    acc.latencies.push_back(now - static_cast<double>(i) * s.gap);
    fs->sample_links();
  }
}

}  // namespace

FabricReport FabricLab::run_sharded(int shards) {
  std::vector<JobSpec> jobs = scenario_.jobs;
  if (jobs.empty()) {
    JobSpec j;
    j.nodes = {0, 1};
    jobs.push_back(std::move(j));
  }
  int nodes = 2;
  for (const JobSpec& j : jobs)
    for (int n : j.nodes) nodes = std::max(nodes, n + 1);
  if (shards <= 0) shards = sim::configured_shards();

  const net::Topology& topo = scenario_.topology;
  net::FabricGraph shape(topo, scenario_.network, nodes);

  // Streams with run()'s tag/buffer/gap bookkeeping, plus their static
  // minimal route and owning shard (the source node's topology group).
  struct Stream {
    StreamSpec spec;
    int src_node = 0;
    int dst_node = 0;
    int shard = 0;
    std::vector<int> keys;
  };
  const double wire_rate = scenario_.network.wire_bw;
  const std::vector<int> group_shard =
      sim::partition_groups(topo.group_graph(nodes), shards);
  std::vector<Stream> streams;
  int next_tag = 1000;
  int next_buffer = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const JobSpec& job = jobs[j];
    for (auto [src, dst] : stream_pairs(job)) {
      Stream st;
      st.spec.src_rank = src;
      st.spec.dst_rank = dst;
      st.spec.bytes = job.message_bytes;
      st.spec.iterations = job.iterations;
      st.spec.gap = job.offered_load > 0.0
                        ? static_cast<double>(job.message_bytes) /
                              (wire_rate * job.offered_load)
                        : 0.0;
      st.spec.tag = next_tag;
      next_tag += 2;
      st.spec.buffer_id = 0x5000 + static_cast<std::uint64_t>(next_buffer++);
      st.spec.tenant = j;
      st.src_node = job.nodes[static_cast<std::size_t>(src)];
      st.dst_node = job.nodes[static_cast<std::size_t>(dst)];
      const int g = topo.group_of_node(st.src_node);
      st.shard = g >= 0 ? group_shard[static_cast<std::size_t>(g)] : 0;
      shape.minimal_path(st.src_node, st.dst_node, st.keys);
      streams.push_back(std::move(st));
    }
  }

  // Boundary set: keys whose static routes span several shards.
  std::vector<int> first_user(static_cast<std::size_t>(shape.key_count()), -1);
  for (const Stream& st : streams)
    for (int key : st.keys) {
      int& u = first_user[static_cast<std::size_t>(key)];
      if (u == -1)
        u = st.shard;
      else if (u != st.shard)
        u = -2;  // shared across shards: boundary proxy
    }
  bool any_boundary = false;
  for (int u : first_user) any_boundary = any_boundary || u == -2;

  // Window size: the cheapest link class the carve actually cuts.  With no
  // boundary the scenario is shard-closed and runs in a single window.
  sim::ShardGroup::Options opts;
  opts.shards = shards;
  opts.lookahead = any_boundary
                       ? topo.min_cut_delay(scenario_.network, topo.cut_links(group_shard))
                       : sim::kNever;
  sim::ShardGroup group(opts);

  std::vector<int> boundary_id(static_cast<std::size_t>(shape.key_count()), -1);
  std::vector<std::vector<int>> boundary_users;
  for (int key = 0; key < shape.key_count(); ++key)
    if (first_user[static_cast<std::size_t>(key)] == -2) {
      boundary_id[static_cast<std::size_t>(key)] =
          group.add_boundary_link(shape.name(key), shape.base_capacity(key));
      boundary_users.emplace_back();
    }
  for (const Stream& st : streams)
    for (int key : st.keys) {
      const int id = boundary_id[static_cast<std::size_t>(key)];
      if (id < 0) continue;
      std::vector<int>& users = boundary_users[static_cast<std::size_t>(id)];
      if (std::find(users.begin(), users.end(), st.shard) == users.end())
        users.push_back(st.shard);
    }
  for (std::vector<int>& users : boundary_users) std::sort(users.begin(), users.end());

  // Per-shard build: fabric replica, flow model, sampler, stream coroutines.
  const obs::RunSampling& rs = obs::run_sampling();
  const bool sampling = rs.sampling_on();
  std::vector<std::unique_ptr<FluidShard>> ctx(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    group.with_shard(s, [&, s](sim::Engine& eng) {
      auto fs = std::make_unique<FluidShard>();
      fs->fabric =
          std::make_unique<net::FabricGraph>(topo, scenario_.network, nodes);
      fs->model = std::make_unique<sim::FlowModel>(eng);
      fs->fabric->materialize(*fs->model);
      fs->tenants.resize(jobs.size());
      fs->link_peak.assign(topo.links().size(), 0.0);
      if (sampling) {
        obs::SamplerConfig sc;
        sc.period = rs.timeline_period;
        if (shards == 1) {
          // Serial: sample straight into the ambient store, like run().
          fs->sampler = std::make_unique<obs::Sampler>(obs::Registry::global(),
                                                       *rs.timeline, std::move(sc));
        } else {
          // Per-shard store, merged below with a "shardN." series prefix
          // (replica resources share names across shards).
          fs->store = std::make_unique<obs::TimelineStore>();
          fs->sampler = std::make_unique<obs::Sampler>(obs::Registry::global(),
                                                       *fs->store, std::move(sc));
        }
        eng.set_sampler(fs->sampler.get());
      }
      std::vector<sim::LabelId> tenant_label(jobs.size());
      for (std::size_t j = 0; j < jobs.size(); ++j)
        tenant_label[j] = eng.intern("fabric." + jobs[j].label);
      for (const Stream& st : streams) {
        if (st.shard != s) continue;
        std::vector<sim::Resource*> path;
        path.reserve(st.keys.size());
        for (int key : st.keys) path.push_back(fs->fabric->at(key));
        eng.spawn(fluid_stream(eng, fs.get(), st.spec, std::move(path),
                               tenant_label[st.spec.tenant]));
      }
      ctx[static_cast<std::size_t>(s)] = std::move(fs);
    });
  }

  // Bind boundary replicas (coordinator side, workers idle between jobs).
  for (int key = 0; key < shape.key_count(); ++key) {
    const int id = boundary_id[static_cast<std::size_t>(key)];
    if (id < 0) continue;
    for (int s : boundary_users[static_cast<std::size_t>(id)])
      group.bind_boundary(id, s, ctx[static_cast<std::size_t>(s)]->fabric->at(key));
  }

  // Cross-shard peaks of boundary links: a replica only sees local load, so
  // the barrier probe sums every sharer's load while workers are parked.
  struct LinkProbe {
    int li = 0;
    int key = 0;
    const std::vector<int>* users = nullptr;
  };
  std::vector<LinkProbe> link_probes;
  std::vector<double> boundary_link_peak(topo.links().size(), 0.0);
  for (std::size_t li = 0; li < topo.links().size(); ++li) {
    const int key = shape.link_key(static_cast<int>(li));
    const int id = boundary_id[static_cast<std::size_t>(key)];
    if (id >= 0)
      link_probes.push_back({static_cast<int>(li), key,
                             &boundary_users[static_cast<std::size_t>(id)]});
  }
  if (!link_probes.empty())
    group.set_barrier_probe([&](sim::Time) {
      for (const LinkProbe& p : link_probes) {
        double load = 0.0;
        for (int s : *p.users)
          load += ctx[static_cast<std::size_t>(s)]->fabric->at(p.key)->load();
        double& peak = boundary_link_peak[static_cast<std::size_t>(p.li)];
        peak = std::max(peak, load / shape.base_capacity(p.key));
      }
    });

  group.run();
  group.merge_obs(obs::Registry::global());

  FabricReport report;
  report.shards = shards;
  report.boundary_links = group.boundary_links();
  report.windows = group.stats().windows;
  report.exchanges = group.stats().exchanges;
  {
    std::vector<int> streams_on(static_cast<std::size_t>(shards), 0);
    for (const Stream& st : streams) ++streams_on[static_cast<std::size_t>(st.shard)];
    for (int c : streams_on) report.populated_shards += c > 0 ? 1 : 0;
  }
  report.tenants.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    TenantReport t;
    t.label = jobs[j].label;
    std::vector<double> lat;
    for (int s = 0; s < shards; ++s) {
      TenantAccum& a = ctx[static_cast<std::size_t>(s)]->tenants[j];
      t.bytes += a.bytes;
      t.finish = std::max(t.finish, a.finish);
      lat.insert(lat.end(), a.latencies.begin(), a.latencies.end());
    }
    t.achieved_bw = t.finish > 0.0 ? t.bytes / t.finish : 0.0;
    // Stats::of sorts, so the shard-order concatenation is harmless.
    t.delivery_latency = trace::Stats::of(std::move(lat));
    report.total_bytes += t.bytes;
    report.elapsed = std::max(report.elapsed, t.finish);
    report.tenants.push_back(std::move(t));
  }
  report.aggregate_bw = report.elapsed > 0.0 ? report.total_bytes / report.elapsed : 0.0;

  // Link means from delivered-byte integrals (exact and shard-invariant);
  // peaks from delivery-event samples plus the barrier probe.
  std::vector<double> link_bytes(topo.links().size(), 0.0);
  if (!topo.links().empty()) {
    const int link0 = shape.link_key(0);
    for (const Stream& st : streams)
      for (int key : st.keys)
        if (key >= link0)
          link_bytes[static_cast<std::size_t>(key - link0)] +=
              static_cast<double>(st.spec.bytes) *
              static_cast<double>(st.spec.iterations);
  }
  report.links.reserve(topo.links().size());
  for (std::size_t li = 0; li < topo.links().size(); ++li) {
    LinkReport lr;
    const int key = shape.link_key(static_cast<int>(li));
    lr.name = shape.name(key);
    lr.mean = report.elapsed > 0.0
                  ? link_bytes[li] / (shape.base_capacity(key) * report.elapsed)
                  : 0.0;
    double peak = boundary_link_peak[li];
    for (int s = 0; s < shards; ++s)
      peak = std::max(peak, ctx[static_cast<std::size_t>(s)]->link_peak[li]);
    lr.peak = peak;
    report.links.push_back(std::move(lr));
  }
  // Minimal routing: decisions are a pure function of the streams (run()'s
  // note_route fires once per cross-switch message).
  for (const Stream& st : streams)
    if (topo.kind() != net::Topology::Kind::kSingleSwitch &&
        topo.host_switch(st.src_node) != topo.host_switch(st.dst_node))
      report.routes += static_cast<std::uint64_t>(st.spec.iterations);
  for (int s = 0; s < shards; ++s) {
    report.solver_flow_visits +=
        ctx[static_cast<std::size_t>(s)]->model->solver().stats().flow_visits;
    report.events += group.engine(s).events_dispatched();
  }

  // Merge per-shard timelines into the ambient store: k-way by (time,
  // shard), series renamed "shardN.<name>" so replicas stay distinct.
  if (sampling && shards > 1) {
    std::vector<std::vector<std::uint32_t>> mapped(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      const auto& names = ctx[static_cast<std::size_t>(s)]->store->series_names();
      auto& m = mapped[static_cast<std::size_t>(s)];
      m.reserve(names.size());
      for (const std::string& nm : names)
        m.push_back(rs.timeline->series("shard" + std::to_string(s) + "." + nm));
    }
    std::vector<std::size_t> cur(static_cast<std::size_t>(shards), 0);
    for (;;) {
      int best = -1;
      double bt = 0.0;
      for (int s = 0; s < shards; ++s) {
        const obs::TimelineStore& store = *ctx[static_cast<std::size_t>(s)]->store;
        if (cur[static_cast<std::size_t>(s)] >= store.size()) continue;
        const double t = store.row(cur[static_cast<std::size_t>(s)]).time;
        if (best < 0 || t < bt) {
          best = s;
          bt = t;
        }
      }
      if (best < 0) break;
      const obs::TimelineRow& row =
          ctx[static_cast<std::size_t>(best)]->store->row(cur[static_cast<std::size_t>(best)]++);
      rs.timeline->append(row.time, mapped[static_cast<std::size_t>(best)][row.series],
                          row.value);
    }
  }

  // Tear down on the owning workers (pooled frames and timeline blocks are
  // thread-affine).
  for (int s = 0; s < shards; ++s)
    group.with_shard(s, [&, s](sim::Engine& eng) {
      eng.set_sampler(nullptr);
      ctx[static_cast<std::size_t>(s)].reset();
    });
  return report;
}

}  // namespace cci::core
