#include "core/fabric_lab.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/coro.hpp"

namespace cci::core {

namespace {

/// One unidirectional bulk stream of a tenant.
struct StreamSpec {
  int src_rank = 0;
  int dst_rank = 0;
  std::size_t bytes = 0;
  int iterations = 0;
  double gap = 0.0;  ///< open-loop injection period (0 = back-to-back)
  int tag = 0;
  std::uint64_t buffer_id = 0;
  std::size_t tenant = 0;
};

struct TenantAccum {
  double bytes = 0.0;
  double finish = 0.0;
  std::vector<double> latencies;
};

struct LinkAccum {
  double sum = 0.0;
  double peak = 0.0;
  std::uint64_t n = 0;
};

/// Shared per-run state the stream coroutines write into.  Owned by run()
/// and alive until the engine drains, so raw pointers in coroutines are
/// safe (same lifetime discipline as the labs' teams).
struct RunState {
  std::vector<TenantAccum> tenants;
  std::vector<sim::Resource*> links;
  std::vector<LinkAccum> link_acc;
  std::vector<obs::Histogram*> link_hist;
  std::uint64_t remaining = 0;  ///< deliveries still expected this run

  void sample_links() {
    for (std::size_t li = 0; li < links.size(); ++li) {
      const double u = links[li]->utilization();
      link_acc[li].sum += u;
      link_acc[li].peak = std::max(link_acc[li].peak, u);
      ++link_acc[li].n;
      link_hist[li]->record(u);
    }
  }
};

sim::Coro sender(mpi::World& w, StreamSpec s, int data_numa) {
  mpi::MsgView msg{s.bytes, data_numa, s.buffer_id};
  for (int i = 0; i < s.iterations; ++i) {
    const double due = static_cast<double>(i) * s.gap;
    if (w.engine().now() < due) co_await w.engine().sleep_until(due);
    co_await *w.isend(s.src_rank, s.dst_rank, s.tag, msg);
  }
}

sim::Coro receiver(mpi::World& w, StreamSpec s, int data_numa, RunState* st) {
  mpi::MsgView msg{s.bytes, data_numa, s.buffer_id + 0x1000};
  TenantAccum& acc = st->tenants[s.tenant];
  for (int i = 0; i < s.iterations; ++i) {
    co_await *w.irecv(s.dst_rank, s.src_rank, s.tag, msg);
    const double now = w.engine().now();
    acc.bytes += static_cast<double>(s.bytes);
    acc.finish = std::max(acc.finish, now);
    acc.latencies.push_back(now - static_cast<double>(i) * s.gap);
    // Sample every fabric link at this delivery: deterministic (event
    // order is), and concentrated where utilization actually changes.
    st->sample_links();
    --st->remaining;
  }
}

/// Symmetric streams register and complete their flows at identical
/// instants, so delivery-event samples can land exactly where every flow
/// has just deregistered and the fabric reads idle.  This probe samples at
/// the midpoints of the injection grid — deterministically mid-flight —
/// and keeps going until the last expected delivery (transfers stretch
/// far past their injection slot once links congest, so a fixed probe
/// count would miss exactly the interesting part of the run).  Pure timer
/// events: it never touches a flow or the RNG.
sim::Coro link_probe(sim::Engine& eng, double period, RunState* st) {
  for (int i = 0; st->remaining > 0; ++i) {
    co_await eng.sleep_until((static_cast<double>(i) + 0.5) * period);
    if (st->remaining == 0) break;
    st->sample_links();
  }
}

/// Streams of one job under its traffic pattern.
std::vector<std::pair<int, int>> stream_pairs(const JobSpec& job) {
  std::vector<std::pair<int, int>> pairs;
  const int n = static_cast<int>(job.nodes.size());
  if (n < 2) return pairs;
  if (job.pattern == TrafficPattern::kPairs) {
    for (int r = 0; r + 1 < n; r += 2) pairs.emplace_back(r, r + 1);
  } else {  // kRing
    for (int r = 0; r < n; ++r) pairs.emplace_back(r, (r + 1) % n);
  }
  return pairs;
}

}  // namespace

const TenantReport* FabricReport::tenant(std::string_view label) const {
  for (const TenantReport& t : tenants)
    if (t.label == label) return &t;
  return nullptr;
}

FabricLab::FabricLab(Scenario scenario) : scenario_(std::move(scenario)) {}

FabricLab::~FabricLab() = default;

FabricReport FabricLab::run(std::string_view only) {
  std::vector<std::string> labels;
  if (!only.empty()) labels.emplace_back(only);
  return run(labels);
}

FabricReport FabricLab::run(const std::vector<std::string>& labels) {
  std::vector<JobSpec> jobs = scenario_.jobs;
  if (jobs.empty()) {
    JobSpec j;
    j.nodes = {0, 1};
    jobs.push_back(std::move(j));
  }
  int nodes = 2;
  for (const JobSpec& j : jobs)
    for (int n : j.nodes) nodes = std::max(nodes, n + 1);

  cluster_ = std::make_unique<net::Cluster>(net::ClusterSpec{
      scenario_.machine, scenario_.network, scenario_.topology, nodes, scenario_.seed});
  cluster_->enable_route_trace(true);

  // All jobs' ranks exist even when `only` restricts the traffic, so the
  // alone/together runs share placement, comm cores and routing state.
  std::vector<mpi::RankConfig> ranks;
  std::vector<std::vector<int>> world_rank(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j)
    for (int node : jobs[j].nodes) {
      world_rank[j].push_back(static_cast<int>(ranks.size()));
      ranks.push_back({node, -1});
    }
  world_ = std::make_unique<mpi::World>(*cluster_, std::move(ranks));

  RunState st;
  st.tenants.resize(jobs.size());
  st.links = cluster_->fabric_links();
  st.link_acc.resize(st.links.size());
  st.link_hist.reserve(st.links.size());
  for (sim::Resource* r : st.links)
    st.link_hist.push_back(
        &obs::Registry::global().histogram("net." + r->name() + ".utilization"));

  const double wire_rate = scenario_.network.wire_bw;
  int next_tag = 1000;
  int next_buffer = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const JobSpec& job = jobs[j];
    // Tag/buffer ids advance for skipped jobs too: stream identities are
    // identical between alone and together runs.
    for (auto [src, dst] : stream_pairs(job)) {
      StreamSpec s;
      s.src_rank = world_rank[j][static_cast<std::size_t>(src)];
      s.dst_rank = world_rank[j][static_cast<std::size_t>(dst)];
      s.bytes = job.message_bytes;
      s.iterations = job.iterations;
      s.gap = job.offered_load > 0.0
                  ? static_cast<double>(job.message_bytes) / (wire_rate * job.offered_load)
                  : 0.0;
      s.tag = next_tag;
      next_tag += 2;
      s.buffer_id = 0x5000 + static_cast<std::uint64_t>(next_buffer++);
      s.tenant = j;
      if (!labels.empty() &&
          std::find(labels.begin(), labels.end(), job.label) == labels.end())
        continue;
      const int numa = scenario_.machine.nic_numa;
      st.remaining += static_cast<std::uint64_t>(job.iterations);
      world_->engine().spawn(sender(*world_, s, numa));
      world_->engine().spawn(receiver(*world_, s, numa, &st));
    }
  }
  // The probe grid derives from every tenant — silenced ones too — so the
  // alone/together runs of the slowdown matrix sample identical instants.
  if (!st.links.empty() && st.remaining > 0) {
    double period = 0.0;
    for (const JobSpec& job : jobs) {
      if (job.offered_load <= 0.0 || job.iterations <= 0) continue;
      if (stream_pairs(job).empty()) continue;
      const double gap =
          static_cast<double>(job.message_bytes) / (wire_rate * job.offered_load);
      period = period > 0.0 ? std::min(period, gap) : gap;
    }
    if (period > 0.0)
      world_->engine().spawn(link_probe(world_->engine(), period, &st));
  }
  cluster_->engine().run();

  FabricReport report;
  report.tenants.reserve(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    TenantReport t;
    t.label = jobs[j].label;
    t.bytes = st.tenants[j].bytes;
    t.finish = st.tenants[j].finish;
    t.achieved_bw = t.finish > 0.0 ? t.bytes / t.finish : 0.0;
    t.delivery_latency = trace::Stats::of(std::move(st.tenants[j].latencies));
    report.total_bytes += t.bytes;
    report.elapsed = std::max(report.elapsed, t.finish);
    report.tenants.push_back(std::move(t));
  }
  report.aggregate_bw = report.elapsed > 0.0 ? report.total_bytes / report.elapsed : 0.0;
  report.links.reserve(st.links.size());
  for (std::size_t li = 0; li < st.links.size(); ++li) {
    LinkReport lr;
    lr.name = st.links[li]->name();
    lr.mean = st.link_acc[li].n > 0
                  ? st.link_acc[li].sum / static_cast<double>(st.link_acc[li].n)
                  : 0.0;
    lr.peak = st.link_acc[li].peak;
    report.links.push_back(std::move(lr));
  }
  // Routing counters from the always-on route trace, so they are exact
  // whether or not the obs registry is enabled.
  const net::Topology& topo = cluster_->topology();
  for (const net::Cluster::RouteChoice& rc : cluster_->route_trace()) {
    ++report.routes;
    switch (topo.kind()) {
      case net::Topology::Kind::kSingleSwitch:
        break;
      case net::Topology::Kind::kFatTree: {
        const int ls = topo.host_switch(rc.src);
        const int ld = topo.host_switch(rc.dst);
        if (ls != ld && rc.via != (ls + ld) % (topo.param_k() / 2)) ++report.reroutes;
        break;
      }
      case net::Topology::Kind::kDragonfly:
        if (rc.via >= 0) ++report.reroutes;
        break;
    }
  }
  return report;
}

}  // namespace cci::core
