// Parallel experiment campaigns: typed multi-axis sweeps over Scenario,
// executed concurrently with content-addressed result caching.
//
// The paper's results are all sweeps — core counts x placements x message
// sizes x kernels — and the figure benches used to hand-roll every loop.
// This layer splits the problem in three:
//
//   * SweepSpec  — the *what varies*: a declarative, typed grid over
//     Scenario (int cores, size_t message bytes, enum placements, kernel
//     traits...), expanded into an ordered point list.  Values keep their
//     native types end to end; nothing round-trips through double.
//   * Campaign   — the *what is measured*: named output columns computed
//     from each point's SideBySideResult (or a custom evaluator for
//     workloads outside the InterferenceLab protocol).
//   * CampaignEngine — the *how*: a work-stealing thread pool runs points
//     concurrently; per-point deterministic seeding makes an N-thread run
//     bitwise-identical to the 1-thread run; a content-addressed on-disk
//     cache lets re-runs and sharded campaigns skip solved points.
//
// See docs/CAMPAIGNS.md for the grammar, cache-key semantics and sharding.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/interference_lab.hpp"
#include "obs/timeline.hpp"
#include "trace/table.hpp"

namespace cci::core {

// ---- deterministic seeding --------------------------------------------------

/// SplitMix64-style mix of a base seed and a point index.  Every campaign
/// point gets seed = mix_seed(base.seed, index), so the RNG stream of a
/// point depends only on the spec — never on which thread ran it or on how
/// many points ran before it.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index);

/// How per-point seeds are derived during expansion.
///  * kPerPoint — scenario.seed = mix_seed(base.seed, point index); the
///    default: points are statistically independent replicas.
///  * kFixed   — every point keeps the base scenario's seed verbatim; what
///    the historical hand-written figure loops did.  The migrated figure
///    definitions use this so their tables stay byte-for-byte identical.
enum class SeedPolicy { kPerPoint, kFixed };

// ---- canonical paper value lists -------------------------------------------

/// Computing-core counts used by the paper's sweeps (previously duplicated
/// as bench::core_sweep): {0,1,2,3,5,8,...} clipped to, then including,
/// max_cores.
[[nodiscard]] std::vector<int> paper_core_counts(int max_cores);

/// NetPIPE-style message sizes, 4 B to 64 MB in x4 steps (previously
/// bench::size_sweep).
[[nodiscard]] std::vector<std::size_t> paper_message_sizes();

// ---- sweep specification ----------------------------------------------------

/// One expanded grid point: the fully-mutated scenario plus, per axis, a
/// display label (table cell / cache key) and a numeric projection of the
/// axis value (CSV-friendly; what metric columns may consult).
struct SweepPoint {
  std::size_t index = 0;  ///< position in the full grid, row-major
  Scenario scenario;
  std::vector<std::string> labels;
  std::vector<double> numeric;
};

/// Declarative, typed multi-axis grid over Scenario.  Axes expand
/// row-major: the first declared axis varies slowest, the last fastest —
/// matching the nesting order of the hand-written loops it replaces.
class SweepSpec {
 public:
  explicit SweepSpec(Scenario base) : base_(std::move(base)) {}

  /// Generic typed axis: how a value mutates the scenario, how it prints,
  /// and (optionally) its numeric projection for columns/CSV.
  template <typename T>
  SweepSpec& axis(std::string label, const std::vector<T>& values,
                  std::function<void(Scenario&, const T&)> set,
                  std::function<std::string(const T&)> format,
                  std::function<double(const T&)> numeric = nullptr) {
    Axis ax;
    ax.label = std::move(label);
    ax.points.reserve(values.size());
    for (const T& v : values) {
      BoundValue bv;
      bv.label = format(v);
      bv.numeric = numeric ? numeric(v) : static_cast<double>(ax.points.size());
      bv.apply = [set, v](Scenario& s) { set(s, v); };
      ax.points.push_back(std::move(bv));
    }
    axes_.push_back(std::move(ax));
    return *this;
  }

  // Typed conveniences for the paper's usual axes.  Labels match what the
  // hand-written tables printed (integers via std::to_string, which equals
  // Table's %.4g rendering for the value ranges in use).
  SweepSpec& cores(std::string label, const std::vector<int>& values);
  SweepSpec& message_bytes(std::string label, const std::vector<std::size_t>& values);
  SweepSpec& comm_thread_placement(std::string label, const std::vector<Placement>& values);
  SweepSpec& data_placement(std::string label, const std::vector<Placement>& values);
  /// Kernel axis: (display name, traits) pairs.
  SweepSpec& kernels(std::string label,
                     const std::vector<std::pair<std::string, hw::KernelTraits>>& values);
  /// Double-valued axis rendered with the Table's %.4g formatting.
  SweepSpec& values(std::string label, const std::vector<double>& vals,
                    std::function<void(Scenario&, double)> set);

  SweepSpec& seed_policy(SeedPolicy p) {
    seed_policy_ = p;
    return *this;
  }

  [[nodiscard]] const Scenario& base() const { return base_; }
  [[nodiscard]] SeedPolicy seed_policy() const { return seed_policy_; }
  [[nodiscard]] std::size_t axis_count() const { return axes_.size(); }
  [[nodiscard]] std::vector<std::string> axis_labels() const;
  [[nodiscard]] std::size_t point_count() const;

  /// Expand the grid into its ordered point list, applying the seed policy
  /// (`base_seed_override`, when >= 0 semantics: used instead of
  /// base().seed as the mix base; pass nullptr for the spec's own seed).
  [[nodiscard]] std::vector<SweepPoint> expand(const std::uint64_t* base_seed_override =
                                                   nullptr) const;

 private:
  struct BoundValue {
    std::string label;
    double numeric = 0.0;
    std::function<void(Scenario&)> apply;
  };
  struct Axis {
    std::string label;
    std::vector<BoundValue> points;
  };

  Scenario base_;
  std::vector<Axis> axes_;
  SeedPolicy seed_policy_ = SeedPolicy::kPerPoint;
};

// ---- campaign: spec + output columns ----------------------------------------

class Campaign {
 public:
  /// Output column value, computed from a point and its protocol result.
  using Metric = std::function<double(const SweepPoint&, const SideBySideResult&)>;
  /// Optional per-column text rendering (default: Table's %.4g).
  using Formatter = std::function<std::string(const SweepPoint&, double)>;
  /// Custom evaluator: computes all column values directly, bypassing the
  /// InterferenceLab protocol (for runtime-app campaigns etc.).
  using Evaluator = std::function<std::vector<double>(const SweepPoint&)>;

  Campaign(std::string name, SweepSpec spec)
      : name_(std::move(name)), spec_(std::move(spec)) {}

  /// Numeric column rendered with the Table's default %.4g.
  Campaign& column(std::string label, Metric fn);
  /// Column rendered with trace::fmt(value, digits).
  Campaign& column(std::string label, int digits, Metric fn);
  /// Column with a custom text rendering of the numeric value.
  Campaign& column(std::string label, Formatter format, Metric fn);

  /// Replace the default InterferenceLab protocol with a custom evaluator.
  /// The id is hashed into every cache key: two campaigns whose points
  /// carry identical scenarios but different evaluators never collide.
  Campaign& evaluator(std::string id, Evaluator fn);

  /// Enable the interference-attribution profiler for every point (default
  /// protocol only): SideBySideResult.attribution is filled, so columns may
  /// consult the victim/aggressor matrix.  Folds "+attrib" into the
  /// evaluator id — attribution changes no stored value today, but keeping
  /// the cache keys distinct means later attribution-derived columns can
  /// never be served from a matrix-less entry.
  Campaign& with_attribution();
  [[nodiscard]] bool attribution() const { return attribution_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const SweepSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& evaluator_id() const { return evaluator_id_; }
  [[nodiscard]] bool has_custom_evaluator() const { return static_cast<bool>(evaluator_); }
  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }
  [[nodiscard]] std::vector<std::string> column_labels() const;

  /// Evaluate one point (the worker-thread hot path).  Returns the column
  /// values; sim_seconds receives the point's simulated duration (0 for
  /// custom evaluators), used for the per-point trace span.
  [[nodiscard]] std::vector<double> evaluate(const SweepPoint& point,
                                             double* sim_seconds) const;

  /// Render one cell of column `col` for `point`.
  [[nodiscard]] std::string format_cell(std::size_t col, const SweepPoint& point,
                                        double value) const;

  // ---- prebuilt metrics (the old core::Sweep set, point-aware) -------------
  static Metric latency_together_us();
  static Metric latency_ratio();
  static Metric bandwidth_together_gbps();
  static Metric bandwidth_ratio();
  static Metric stream_per_core_gbps();
  static Metric stall_fraction();
  // Attribution-derived columns (require with_attribution()):
  /// contended[comm][compute] / isolated[comm] — how much the computation
  /// stretched communication in the side-by-side phase.
  static Metric comm_slowdown_from_compute();
  /// contended[compute][comm] / isolated[compute] — the reverse direction.
  static Metric compute_slowdown_from_comm();
  /// Fraction of comm busy time lost to any contention.
  static Metric comm_contended_fraction();
  /// Fraction of compute busy time lost to any contention.
  static Metric compute_contended_fraction();

 private:
  struct Column {
    std::string label;
    Metric fn;
    Formatter format;  ///< null = Table default %.4g
  };

  std::string name_;
  SweepSpec spec_;
  std::vector<Column> columns_;
  std::string evaluator_id_ = "interference_lab.v1";
  Evaluator evaluator_;
  bool attribution_ = false;
};

// ---- cache ------------------------------------------------------------------

/// Content-addressed key of one campaign point: FNV-1a 64 over the schema
/// version, the evaluator id, the axis and column labels, the point's axis
/// value labels, and the canonical serialization of its scenario (every
/// machine/network/kernel/scenario field, doubles as %.17g).  Anything
/// that could change the stored values changes the key.
[[nodiscard]] std::uint64_t cache_key(const Campaign& campaign, const SweepPoint& point);

/// Canonical scenario serialization used by the cache key (exposed for
/// tests; the format is versioned by kCampaignSchemaVersion).
void serialize_scenario(std::ostream& os, const Scenario& s);

// v2: cache key folds in the simulation shard count (CCI_SIM_SHARDS /
// --sim-shards), so cached points can never mix shard configurations.
// v3: scenario serialization covers the fabric topology (kind, routing
// policy, adaptive threshold, shape parameters) and the multi-job tenant
// list (label, rank->node mapping, traffic shape per JobSpec).
inline constexpr int kCampaignSchemaVersion = 3;

// ---- engine -----------------------------------------------------------------

struct CampaignOptions {
  /// Worker threads for point execution.  1 = run inline on the calling
  /// thread (feeding the process-wide obs registry exactly like the old
  /// hand-written loops); N > 1 = work-stealing pool with per-worker
  /// scratch registries merged back deterministically.
  int jobs = 1;
  /// Directory of the on-disk result cache; empty disables caching.
  std::string cache_dir;
  /// Shard selection: this engine runs points with index % shard_count ==
  /// shard_index.  The union of all shards is the full grid.
  int shard_index = 0;
  int shard_count = 1;
  /// When set, replaces the base scenario's seed as the mix base.
  bool override_base_seed = false;
  std::uint64_t base_seed = 0;
  /// > 0 enables time-resolved sampling: every *executed* point runs with a
  /// fresh, enabled scratch registry and an obs::Sampler at this period,
  /// filling CampaignRun::timelines[i].  Per-point registries make the
  /// timeline bytes independent of jobs/sharding; cached points keep an
  /// empty timeline.  0 (default) leaves every pre-existing code path —
  /// including the process registry's contents — bitwise untouched.
  double timeline_period = 0.0;
};

/// One executed (sharded) campaign: the point list, the value matrix, and
/// provenance.  table() renders axis labels + formatted columns.
struct CampaignRun {
  std::vector<std::string> headers;
  std::vector<SweepPoint> points;           ///< this shard's points, grid order
  std::vector<std::vector<double>> values;  ///< [point][column]
  std::vector<bool> from_cache;             ///< per point
  std::vector<obs::TimelineStore> timelines;  ///< per point; empty unless
                                              ///< timeline_period > 0
  std::size_t grid_total = 0;               ///< full grid size (all shards)
  std::size_t executed = 0;                 ///< points actually simulated here
  std::size_t cached = 0;                   ///< points served from the cache

  [[nodiscard]] trace::Table table(const Campaign& campaign) const;

  /// Tidy timeline CSV: `campaign,point,time,series,value`, one row per
  /// sample, points in grid order (`point` is the global grid index, so
  /// shard outputs concatenate into the jobs=1 whole-grid file).  Pass
  /// with_header=false when appending to a file that already has one.
  void write_timeline_csv(std::ostream& os, const std::string& campaign_name,
                          bool with_header = true) const;
};

class CampaignEngine {
 public:
  explicit CampaignEngine(CampaignOptions options = {});

  /// Run (the local shard of) a campaign: resolve cached points, execute
  /// the misses on the pool, persist new results, merge worker metrics,
  /// bump campaign.points_* counters and emit per-point trace spans.
  CampaignRun run(const Campaign& campaign);

  [[nodiscard]] const CampaignOptions& options() const { return options_; }

  /// Cumulative totals across every campaign this engine ran.
  [[nodiscard]] std::size_t points_total() const { return points_total_; }
  [[nodiscard]] std::size_t points_executed() const { return points_executed_; }
  [[nodiscard]] std::size_t points_cached() const { return points_cached_; }

 private:
  CampaignOptions options_;
  std::size_t points_total_ = 0;
  std::size_t points_executed_ = 0;
  std::size_t points_cached_ = 0;
};

}  // namespace cci::core
