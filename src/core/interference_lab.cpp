#include "core/interference_lab.hpp"

#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/tracer.hpp"

namespace cci::core {

InterferenceLab::InterferenceLab(Scenario scenario)
    : scenario_(std::move(scenario)), attribution_(obs::run_sampling().attribution) {
  cluster_ = std::make_unique<net::Cluster>(net::ClusterSpec{
      scenario_.machine, scenario_.network, scenario_.topology, /*nodes=*/2, scenario_.seed});
  int comm = scenario_.comm_core();
  world_ = std::make_unique<mpi::World>(*cluster_, std::vector<mpi::RankConfig>{
                                                       {0, comm}, {1, comm}});
}

InterferenceLab::~InterferenceLab() = default;

std::unique_ptr<ComputeTeam> InterferenceLab::make_team(int node) {
  ComputeTeam::Options opt;
  opt.cores = scenario_.compute_cores();
  opt.data_numa = scenario_.data_numa();
  opt.kernel = scenario_.kernel;
  opt.iters_per_pass = scenario_.iters_per_pass();
  opt.repetitions = scenario_.compute_repetitions;
  return std::make_unique<ComputeTeam>(cluster_->machine(node), std::move(opt),
                                       cluster_->rng());
}

ComputePhase InterferenceLab::summarize(const ComputeTeam& team) {
  ComputePhase phase;
  phase.pass_duration = trace::Stats::of(team.pass_durations());
  phase.per_core_bandwidth = trace::Stats::of(team.per_core_bandwidths());
  phase.mem_stall_fraction = team.mem_stall_fraction();
  return phase;
}

CommPhase InterferenceLab::summarize(const mpi::PingPong& pp, std::size_t bytes) {
  CommPhase phase;
  phase.latency = trace::Stats::of(pp.latencies());
  std::vector<double> bws;
  bws.reserve(pp.latencies().size());
  for (double lat : pp.latencies())
    if (lat > 0) bws.push_back(static_cast<double>(bytes) / lat);
  phase.bandwidth = trace::Stats::of(std::move(bws));
  return phase;
}

CommPhase InterferenceLab::run_comm_alone(int tag_base) {
  mpi::PingPongOptions opt;
  opt.bytes = scenario_.message_bytes;
  opt.iterations = scenario_.pingpong_iterations;
  opt.warmup = scenario_.pingpong_warmup;
  opt.tag = tag_base;
  opt.data_numa_a = scenario_.data_numa();
  opt.data_numa_b = scenario_.data_numa();
  mpi::PingPong pp(*world_, 0, 1, opt);
  pp.start();
  cluster_->engine().run();
  return summarize(pp, opt.bytes);
}

ComputePhase InterferenceLab::run_compute_alone() {
  if (scenario_.computing_cores <= 0) return {};
  auto team0 = make_team(0);
  auto team1 = make_team(1);
  team0->start();
  team1->start();
  cluster_->engine().run();
  return summarize(*team0);
}

void InterferenceLab::run_together(ComputePhase& compute, CommPhase& comm, int tag_base) {
  mpi::PingPongOptions opt;
  opt.bytes = scenario_.message_bytes;
  opt.iterations = scenario_.pingpong_iterations;
  opt.warmup = scenario_.pingpong_warmup;
  opt.tag = tag_base;
  opt.data_numa_a = scenario_.data_numa();
  opt.data_numa_b = scenario_.data_numa();
  opt.continuous = scenario_.computing_cores > 0;
  mpi::PingPong pp(*world_, 0, 1, opt);

  if (scenario_.computing_cores <= 0) {
    pp.start();
    cluster_->engine().run();
    compute = {};
    comm = summarize(pp, opt.bytes);
    return;
  }

  auto team0 = make_team(0);
  auto team1 = make_team(1);
  pp.start();
  team0->start();
  team1->start();
  // Stop the ping-pong once both compute teams have finished (the paper
  // measures communication while computation is in flight).
  cluster_->engine().spawn([](ComputeTeam& a, ComputeTeam& b, mpi::PingPong& p) -> sim::Coro {
    co_await a.done();
    co_await b.done();
    p.request_stop();
  }(*team0, *team1, pp));
  cluster_->engine().run();
  compute = summarize(*team0);
  comm = summarize(pp, opt.bytes);
}

SideBySideResult InterferenceLab::run() {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("core.lab.protocol_runs").add(1);
  obs::Tracer& tracer = reg.tracer();
  const obs::TrackId track = tracer.track("lab.phases");
  sim::Engine& engine = cluster_->engine();
  auto phase_span = [&](const char* name, sim::Time t0) {
    if (tracer.on()) tracer.span(track, name, t0, engine.now());
  };

  // Ambient time-resolved sampling (campaign --timeline): the sampler rides
  // the engine across all three phases so the resulting timeline covers the
  // whole protocol on one simulated-time axis.
  const obs::RunSampling& rs = obs::run_sampling();
  std::optional<obs::Sampler> sampler;
  if (rs.sampling_on()) {
    obs::SamplerConfig sc;
    sc.period = rs.timeline_period;
    sampler.emplace(reg, *rs.timeline, std::move(sc));
    engine.set_sampler(&*sampler);
  }

  SideBySideResult result;
  sim::Time t0 = engine.now();
  result.compute_alone = run_compute_alone();
  phase_span("compute_alone", t0);
  t0 = engine.now();
  result.comm_alone = run_comm_alone(1000);
  phase_span("comm_alone", t0);
  t0 = engine.now();
  // The attribution profiler observes only the side-by-side phase: the
  // alone phases are contention-free by construction, so their inclusion
  // would just dilute the matrix with isolated time.
  sim::InterferenceProfiler profiler;
  if (attribution_) cluster_->model().set_profiler(&profiler);
  run_together(result.compute_together, result.comm_together, 2000);
  if (attribution_) {
    cluster_->model().set_profiler(nullptr);
    result.attribution = profiler.report();
  }
  phase_span("side_by_side", t0);
  if (sampler) engine.set_sampler(nullptr);
  return result;
}

}  // namespace cci::core
