// Multi-run repetition: the paper's curves are "median value of the
// results obtained with several runs" with first/last-decile bands.  This
// helper runs a scenario under several seeds and aggregates the per-run
// medians, giving honest run-to-run spread on top of per-iteration spread.
#pragma once

#include <vector>

#include "core/interference_lab.hpp"

namespace cci::core {

struct RepeatedResult {
  /// Distribution of per-run medians across the seeds.
  trace::Stats latency_alone;
  trace::Stats latency_together;
  trace::Stats bandwidth_alone;
  trace::Stats bandwidth_together;
  trace::Stats compute_pass_together;
  int runs = 0;
};

inline RepeatedResult run_repeated(const Scenario& base, int runs) {
  RepeatedResult out;
  out.runs = runs;
  std::vector<double> la, lt, ba, bt, cp;
  for (int r = 0; r < runs; ++r) {
    Scenario s = base;
    s.seed = base.seed + static_cast<std::uint64_t>(r) * 0x9E3779B9u;
    InterferenceLab lab(s);
    SideBySideResult result = lab.run();
    la.push_back(result.comm_alone.latency.median);
    lt.push_back(result.comm_together.latency.median);
    ba.push_back(result.comm_alone.bandwidth.median);
    bt.push_back(result.comm_together.bandwidth.median);
    if (result.compute_together.pass_duration.n > 0)
      cp.push_back(result.compute_together.pass_duration.median);
  }
  out.latency_alone = trace::Stats::of(std::move(la));
  out.latency_together = trace::Stats::of(std::move(lt));
  out.bandwidth_alone = trace::Stats::of(std::move(ba));
  out.bandwidth_together = trace::Stats::of(std::move(bt));
  out.compute_pass_together = trace::Stats::of(std::move(cp));
  return out;
}

}  // namespace cci::core
