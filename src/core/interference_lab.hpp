// InterferenceLab: the paper's benchmarking protocol (§2.1).
//
//   (1) computation without communication,
//   (2) communication without computation,
//   (3) computation with side-by-side communication,
//
// on a two-node simulated cluster, symmetric on both nodes (MPI+OpenMP:
// one communication thread, N computing threads per node).  Results carry
// medians and deciles exactly as the paper plots them.
#pragma once

#include <memory>

#include "core/compute_team.hpp"
#include "core/scenario.hpp"
#include "mpi/pingpong.hpp"
#include "mpi/world.hpp"
#include "sim/attribution.hpp"
#include "trace/stats.hpp"

namespace cci::core {

struct CommPhase {
  trace::Stats latency;    ///< half round-trip (s)
  trace::Stats bandwidth;  ///< message bytes / latency (B/s)
};

struct ComputePhase {
  trace::Stats pass_duration;       ///< per-pass wall time (s)
  trace::Stats per_core_bandwidth;  ///< DRAM B/s per core (0 if cache-resident)
  double mem_stall_fraction = 0.0;
};

struct SideBySideResult {
  ComputePhase compute_alone;
  CommPhase comm_alone;
  ComputePhase compute_together;
  CommPhase comm_together;
  /// Victim/aggressor decomposition of the side-by-side phase (filled only
  /// when attribution is enabled — see InterferenceLab::set_attribution).
  sim::AttributionReport attribution;
};

class InterferenceLab {
 public:
  explicit InterferenceLab(Scenario scenario);
  ~InterferenceLab();

  /// Run the full three-phase protocol.
  SideBySideResult run();

  /// Phase primitives, for benches that need only part of the protocol.
  CommPhase run_comm_alone(int tag_base = 1000);
  ComputePhase run_compute_alone();
  /// Runs computation and the ping-pong together; fills both out-params.
  void run_together(ComputePhase& compute, CommPhase& comm, int tag_base = 2000);

  const Scenario& scenario() const { return scenario_; }
  net::Cluster& cluster() { return *cluster_; }
  mpi::World& world() { return *world_; }

  /// Decompose the side-by-side phase into isolated time vs contention
  /// delay per workload class (exact, from the flow model's rate history).
  /// Defaults to the ambient obs::run_sampling().attribution flag so
  /// campaign-driven runs opt in without a Scenario field (Scenario feeds
  /// the content-addressed cache key, which must stay stable).
  void set_attribution(bool on) { attribution_ = on; }
  [[nodiscard]] bool attribution() const { return attribution_; }

 private:
  std::unique_ptr<ComputeTeam> make_team(int node);
  static ComputePhase summarize(const ComputeTeam& team);
  static CommPhase summarize(const mpi::PingPong& pp, std::size_t bytes);

  Scenario scenario_;
  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<mpi::World> world_;
  bool attribution_ = false;
};

}  // namespace cci::core
