// InterferenceLab: the paper's benchmarking protocol (§2.1).
//
//   (1) computation without communication,
//   (2) communication without computation,
//   (3) computation with side-by-side communication,
//
// on a two-node simulated cluster, symmetric on both nodes (MPI+OpenMP:
// one communication thread, N computing threads per node).  Results carry
// medians and deciles exactly as the paper plots them.
#pragma once

#include <memory>

#include "core/compute_team.hpp"
#include "core/scenario.hpp"
#include "mpi/pingpong.hpp"
#include "mpi/world.hpp"
#include "trace/stats.hpp"

namespace cci::core {

struct CommPhase {
  trace::Stats latency;    ///< half round-trip (s)
  trace::Stats bandwidth;  ///< message bytes / latency (B/s)
};

struct ComputePhase {
  trace::Stats pass_duration;       ///< per-pass wall time (s)
  trace::Stats per_core_bandwidth;  ///< DRAM B/s per core (0 if cache-resident)
  double mem_stall_fraction = 0.0;
};

struct SideBySideResult {
  ComputePhase compute_alone;
  CommPhase comm_alone;
  ComputePhase compute_together;
  CommPhase comm_together;
};

class InterferenceLab {
 public:
  explicit InterferenceLab(Scenario scenario);
  ~InterferenceLab();

  /// Run the full three-phase protocol.
  SideBySideResult run();

  /// Phase primitives, for benches that need only part of the protocol.
  CommPhase run_comm_alone(int tag_base = 1000);
  ComputePhase run_compute_alone();
  /// Runs computation and the ping-pong together; fills both out-params.
  void run_together(ComputePhase& compute, CommPhase& comm, int tag_base = 2000);

  const Scenario& scenario() const { return scenario_; }
  net::Cluster& cluster() { return *cluster_; }
  mpi::World& world() { return *world_; }

 private:
  std::unique_ptr<ComputeTeam> make_team(int node);
  static ComputePhase summarize(const ComputeTeam& team);
  static CommPhase summarize(const mpi::PingPong& pp, std::size_t bytes);

  Scenario scenario_;
  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<mpi::World> world_;
};

}  // namespace cci::core
