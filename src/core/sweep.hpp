// Declarative parameter sweeps over scenarios.
//
// The figure benches loop over core counts / message sizes / placements by
// hand; Sweep packages that pattern for downstream users: declare the axis
// and the metrics, get a Table (text or CSV) back.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/interference_lab.hpp"
#include "trace/table.hpp"

namespace cci::core {

class Sweep {
 public:
  using Mutator = std::function<void(Scenario&, double)>;
  using Metric = std::function<double(const SideBySideResult&)>;

  explicit Sweep(Scenario base) : base_(std::move(base)) {}

  /// Define the swept axis: a label, the values, and how a value mutates
  /// the scenario.
  Sweep& axis(std::string label, std::vector<double> values, Mutator apply) {
    axis_label_ = std::move(label);
    values_ = std::move(values);
    mutator_ = std::move(apply);
    return *this;
  }

  /// Add an output column computed from each point's result.
  Sweep& metric(std::string label, Metric fn) {
    metric_labels_.push_back(std::move(label));
    metrics_.push_back(std::move(fn));
    return *this;
  }

  /// Run every point (a fresh lab per point) and build the table.
  trace::Table run() const {
    std::vector<std::string> headers{axis_label_};
    for (const auto& l : metric_labels_) headers.push_back(l);
    trace::Table table(std::move(headers));
    for (double v : values_) {
      Scenario s = base_;
      mutator_(s, v);
      InterferenceLab lab(s);
      SideBySideResult r = lab.run();
      std::vector<double> row{v};
      for (const auto& m : metrics_) row.push_back(m(r));
      table.add_row(row);
    }
    return table;
  }

  // ---- prebuilt metrics ----------------------------------------------------
  static Metric latency_together_us() {
    return [](const SideBySideResult& r) { return r.comm_together.latency.median * 1e6; };
  }
  static Metric latency_ratio() {
    return [](const SideBySideResult& r) {
      return r.comm_alone.latency.median > 0
                 ? r.comm_together.latency.median / r.comm_alone.latency.median
                 : 0.0;
    };
  }
  static Metric bandwidth_together_gbps() {
    return [](const SideBySideResult& r) { return r.comm_together.bandwidth.median / 1e9; };
  }
  static Metric bandwidth_ratio() {
    return [](const SideBySideResult& r) {
      return r.comm_alone.bandwidth.median > 0
                 ? r.comm_together.bandwidth.median / r.comm_alone.bandwidth.median
                 : 0.0;
    };
  }
  static Metric stream_per_core_gbps() {
    return [](const SideBySideResult& r) {
      return r.compute_together.per_core_bandwidth.median / 1e9;
    };
  }
  static Metric stall_fraction() {
    return [](const SideBySideResult& r) { return r.compute_together.mem_stall_fraction; };
  }

  // ---- prebuilt axes ---------------------------------------------------------
  static Mutator cores_axis() {
    return [](Scenario& s, double v) { s.computing_cores = static_cast<int>(v); };
  }
  static Mutator message_bytes_axis() {
    return [](Scenario& s, double v) { s.message_bytes = static_cast<std::size_t>(v); };
  }

 private:
  Scenario base_;
  std::string axis_label_;
  std::vector<double> values_;
  Mutator mutator_;
  std::vector<std::string> metric_labels_;
  std::vector<Metric> metrics_;
};

}  // namespace cci::core
