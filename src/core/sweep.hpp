// DEPRECATED single-axis sweeps — superseded by the typed, parallel
// campaign API in core/campaign.hpp.
//
// Sweep's one axis is `double`-typed, which silently truncates the values
// it was most used for: 64 MB message sizes and core counts round-tripped
// through double before landing back in `size_t`/`int` scenario fields.
// SweepSpec keeps axis values in their native types, sweeps several axes
// at once, and its CampaignEngine adds parallel execution, caching and
// sharding on top.
//
// Migration: replace
//     Sweep(base).axis("cores", {0, 5}, Sweep::cores_axis())
//                .metric("bw", Sweep::bandwidth_ratio()).run()
// with
//     Campaign("my_sweep", SweepSpec(base)
//                  .seed_policy(SeedPolicy::kFixed)   // Sweep never re-seeded
//                  .cores("cores", {0, 5}))
//         .column("bw", Campaign::bandwidth_ratio());
//     CampaignEngine().run(campaign).table(campaign)
// (see docs/CAMPAIGNS.md).  This wrapper keeps the historical behaviour —
// fixed seed, serial execution, no cache — bit-for-bit.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace cci::core {

class [[deprecated(
    "core::Sweep's double axis truncates sizes/cores; use core::SweepSpec + "
    "core::Campaign (docs/CAMPAIGNS.md)")]] Sweep {
 public:
  using Mutator = std::function<void(Scenario&, double)>;
  using Metric = std::function<double(const SideBySideResult&)>;

  explicit Sweep(Scenario base) : base_(std::move(base)) {}

  /// Define the swept axis: a label, the values, and how a value mutates
  /// the scenario.
  Sweep& axis(std::string label, std::vector<double> values, Mutator apply) {
    axis_label_ = std::move(label);
    values_ = std::move(values);
    mutator_ = std::move(apply);
    return *this;
  }

  /// Add an output column computed from each point's result.
  Sweep& metric(std::string label, Metric fn) {
    metric_labels_.push_back(std::move(label));
    metrics_.push_back(std::move(fn));
    return *this;
  }

  /// Run every point (a fresh lab per point, serial, fixed seed — the
  /// historical behaviour) and build the table.
  trace::Table run() const {
    Campaign campaign("sweep:" + axis_label_,
                      SweepSpec(base_)
                          .seed_policy(SeedPolicy::kFixed)
                          .values(axis_label_, values_, mutator_));
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      Metric m = metrics_[i];
      campaign.column(metric_labels_[i],
                      [m](const SweepPoint&, const SideBySideResult& r) { return m(r); });
    }
    CampaignEngine engine;
    CampaignRun run = engine.run(campaign);
    return run.table(campaign);
  }

  // ---- prebuilt metrics ----------------------------------------------------
  static Metric latency_together_us() {
    return [](const SideBySideResult& r) { return r.comm_together.latency.median * 1e6; };
  }
  static Metric latency_ratio() {
    return [](const SideBySideResult& r) {
      return r.comm_alone.latency.median > 0
                 ? r.comm_together.latency.median / r.comm_alone.latency.median
                 : 0.0;
    };
  }
  static Metric bandwidth_together_gbps() {
    return [](const SideBySideResult& r) { return r.comm_together.bandwidth.median / 1e9; };
  }
  static Metric bandwidth_ratio() {
    return [](const SideBySideResult& r) {
      return r.comm_alone.bandwidth.median > 0
                 ? r.comm_together.bandwidth.median / r.comm_alone.bandwidth.median
                 : 0.0;
    };
  }
  static Metric stream_per_core_gbps() {
    return [](const SideBySideResult& r) {
      return r.compute_together.per_core_bandwidth.median / 1e9;
    };
  }
  static Metric stall_fraction() {
    return [](const SideBySideResult& r) { return r.compute_together.mem_stall_fraction; };
  }

  // ---- prebuilt axes ---------------------------------------------------------
  static Mutator cores_axis() {
    return [](Scenario& s, double v) { s.computing_cores = static_cast<int>(v); };
  }
  static Mutator message_bytes_axis() {
    return [](Scenario& s, double v) { s.message_bytes = static_cast<std::size_t>(v); };
  }

 private:
  Scenario base_;
  std::string axis_label_;
  std::vector<double> values_;
  Mutator mutator_;
  std::vector<std::string> metric_labels_;
  std::vector<Metric> metrics_;
};

}  // namespace cci::core
