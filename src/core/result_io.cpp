#include "core/result_io.hpp"

#include <cmath>
#include <optional>
#include <ostream>

namespace cci::core {

JsonWriter::JsonWriter(std::ostream& os) : os_(os) { first_in_scope_.push_back(true); }
JsonWriter::~JsonWriter() = default;

void JsonWriter::comma() {
  if (!first_in_scope_.back()) os_ << ",";
  first_in_scope_.back() = false;
  os_ << "\n";
  indent();
}

void JsonWriter::indent() {
  for (int i = 0; i < depth_; ++i) os_ << "  ";
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  os_ << "{";
  ++depth_;
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  --depth_;
  first_in_scope_.pop_back();
  os_ << "\n";
  indent();
  os_ << "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array(const std::string& key) {
  comma();
  os_ << '"' << key << "\": [";
  ++depth_;
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  --depth_;
  first_in_scope_.pop_back();
  os_ << "\n";
  indent();
  os_ << "]";
  return *this;
}

JsonWriter& JsonWriter::object_field(const std::string& key) {
  comma();
  os_ << '"' << key << "\": {";
  ++depth_;
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, double value) {
  comma();
  if (std::isfinite(value)) {
    os_ << '"' << key << "\": " << value;
  } else {
    os_ << '"' << key << "\": null";
  }
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, const std::string& value) {
  comma();
  os_ << '"' << key << "\": \"" << value << '"';
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, int value) {
  comma();
  os_ << '"' << key << "\": " << value;
  return *this;
}

namespace {

void write_stats(JsonWriter& w, const char* key, const trace::Stats& s) {
  w.object_field(key);
  w.field("n", static_cast<int>(s.n));
  w.field("median", s.median);
  w.field("decile1", s.decile1);
  w.field("decile9", s.decile9);
  w.field("mean", s.mean);
  w.end_object();
}

void write_comm(JsonWriter& w, const char* key, const CommPhase& phase) {
  w.object_field(key);
  write_stats(w, "latency_s", phase.latency);
  write_stats(w, "bandwidth_Bps", phase.bandwidth);
  w.end_object();
}

void write_compute(JsonWriter& w, const char* key, const ComputePhase& phase) {
  w.object_field(key);
  write_stats(w, "pass_duration_s", phase.pass_duration);
  write_stats(w, "per_core_bandwidth_Bps", phase.per_core_bandwidth);
  w.field("mem_stall_fraction", phase.mem_stall_fraction);
  w.end_object();
}

}  // namespace

void write_metrics_json(JsonWriter& w, const obs::Snapshot& snapshot) {
  w.object_field("metrics");
  for (const auto& e : snapshot.entries) {
    using Kind = obs::Snapshot::Entry::Kind;
    switch (e.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        w.field(e.name, e.value);
        break;
      case Kind::kHistogram:
        w.object_field(e.name);
        w.field("count", static_cast<double>(e.count));
        w.field("sum", e.sum);
        w.field("mean", e.value);
        w.field("p50", e.p50);
        w.field("p90", e.p90);
        w.field("p99", e.p99);
        w.field("max", e.max);
        w.end_object();
        break;
    }
  }
  w.end_object();
}

void write_bench_json(std::ostream& os, const std::string& bench,
                      const std::vector<std::pair<std::string, double>>& fields,
                      const obs::Snapshot* metrics) {
  JsonWriter w(os);
  w.begin_object();
  w.field("bench", bench);
  for (const auto& [key, value] : fields) w.field(key, value);
  if (metrics) write_metrics_json(w, *metrics);
  w.end_object();
  os << "\n";
}

void write_result_json(std::ostream& os, const Scenario& scenario,
                       const SideBySideResult& result) {
  JsonWriter w(os);
  w.begin_object();
  w.object_field("scenario");
  w.field("machine", scenario.machine.name);
  w.field("fabric", scenario.network.fabric);
  w.field("kernel", scenario.kernel.name);
  w.field("arithmetic_intensity", scenario.kernel.arithmetic_intensity());
  w.field("computing_cores", scenario.computing_cores);
  w.field("message_bytes", static_cast<double>(scenario.message_bytes));
  w.field("data_placement", to_string(scenario.data));
  w.field("comm_thread_placement", to_string(scenario.comm_thread));
  w.field("seed", static_cast<double>(scenario.seed));
  w.end_object();
  write_compute(w, "compute_alone", result.compute_alone);
  write_comm(w, "comm_alone", result.comm_alone);
  write_compute(w, "compute_together", result.compute_together);
  write_comm(w, "comm_together", result.comm_together);
  if (obs::Registry::global().enabled()) {
    const obs::Snapshot snapshot = obs::Registry::global().snapshot();
    // Fault-layer telemetry exists only when a FaultModel was installed:
    // try_value_of distinguishes "no fault layer" (object omitted entirely)
    // from a faulted run that happened to lose nothing (explicit zeros).
    const std::optional<double> lost = snapshot.try_value_of("net.messages_lost");
    const std::optional<double> corrupted =
        snapshot.try_value_of("net.messages_corrupted");
    if (lost || corrupted) {
      w.object_field("faults");
      if (lost) w.field("messages_lost", *lost);
      if (corrupted) w.field("messages_corrupted", *corrupted);
      w.end_object();
    }
    write_metrics_json(w, snapshot);
  }
  w.end_object();
  os << "\n";
}

}  // namespace cci::core
