// Scenario: one experiment configuration in the paper's vocabulary.
//
// Placement is expressed relative to the NIC (§4.3): the communication
// thread and the data (used by both computation and communication) are each
// either near the NIC (its NUMA node) or far from it (the other socket).
// Computing threads fill cores in logical numbering order, as the paper's
// benchmark does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/machine_config.hpp"
#include "hw/workload.hpp"
#include "net/network_params.hpp"
#include "net/topology.hpp"

namespace cci::core {

enum class Placement { kNearNic, kFarFromNic };

inline const char* to_string(Placement p) {
  return p == Placement::kNearNic ? "near" : "far";
}

/// Traffic a tenant drives across its nodes (core::FabricLab).
enum class TrafficPattern {
  kPairs,  ///< rank 2i -> rank 2i+1, disjoint streams
  kRing,   ///< rank i -> rank (i+1) % n, every node sends and receives
};

inline const char* to_string(TrafficPattern p) {
  return p == TrafficPattern::kPairs ? "pairs" : "ring";
}

/// One tenant of a multi-job scenario: the cluster nodes its ranks occupy
/// (rank r runs on nodes[r]) and the bulk traffic it injects.  Scenarios
/// with an empty `jobs` list are the paper's single-job experiments.
struct JobSpec {
  std::string label = "job";
  std::vector<int> nodes;              ///< rank -> cluster node
  std::size_t message_bytes = 1 << 20;  ///< rendezvous-sized by default
  int iterations = 4;                   ///< send windows per stream
  double offered_load = 1.0;            ///< injection rate, fraction of wire bw
  TrafficPattern pattern = TrafficPattern::kPairs;
};

struct Scenario {
  hw::MachineConfig machine = hw::MachineConfig::henri();
  net::NetworkParams network = net::NetworkParams::ib_edr();
  /// Fabric graph the cluster is built on.  The default single switch
  /// reproduces the paper's 2-node fabric bit-for-bit.
  net::Topology topology = net::Topology::single_switch();
  /// Multi-tenant co-scheduling (fat-tree/dragonfly studies); empty for
  /// the paper's single-job scenarios.
  std::vector<JobSpec> jobs;

  Placement comm_thread = Placement::kFarFromNic;
  Placement data = Placement::kNearNic;

  int computing_cores = 0;
  /// Kernel run by the computing threads (defaults to STREAM TRIAD).
  hw::KernelTraits kernel{"stream-triad", 2.0, 24.0, hw::VectorClass::kSse};

  std::size_t message_bytes = 4;
  int pingpong_iterations = 50;
  int pingpong_warmup = 5;
  int compute_repetitions = 8;
  /// Nominal single-pass duration used to size the per-core work.
  double target_pass_seconds = 0.05;

  std::uint64_t seed = 42;

  /// Core hosting the communication thread: last core of the NIC's NUMA
  /// node (near) or last core of the machine (far).
  [[nodiscard]] int comm_core() const {
    if (comm_thread == Placement::kNearNic)
      return (machine.nic_numa + 1) * machine.cores_per_numa - 1;
    return machine.total_cores() - 1;
  }

  /// NUMA node holding all benchmark data (§4.2 allocates on one node).
  [[nodiscard]] int data_numa() const {
    return data == Placement::kNearNic ? machine.nic_numa : machine.numa_count() - 1;
  }

  /// Computing cores in logical order, skipping the communication core.
  [[nodiscard]] std::vector<int> compute_cores() const {
    std::vector<int> cores;
    int comm = comm_core();
    for (int c = 0; c < machine.total_cores() && static_cast<int>(cores.size()) < computing_cores;
         ++c)
      if (c != comm) cores.push_back(c);
    return cores;
  }

  /// Solo (uncontended) progress rate of the kernel on one core, used to
  /// size per-pass work: min(cpu roofline, per-core memory bandwidth on
  /// the DRAM-visible traffic only).
  [[nodiscard]] double solo_rate() const {
    double cpu = machine.core_freq_nominal_hz / hw::cycles_per_iter(machine, kernel);
    double dram_bytes =
        kernel.bytes_per_iter * kernel.dram_fraction(machine.llc_bytes_per_socket);
    if (dram_bytes <= 0.0) return cpu;
    return std::min(cpu, machine.per_core_mem_bw / dram_bytes);
  }
  [[nodiscard]] double iters_per_pass() const { return target_pass_seconds * solo_rate(); }
};

}  // namespace cci::core
