// Span tracer stamped in *simulated* time.
//
// Tracks are interned rows (one per core, per resource, per MPI rank...);
// instrumentation records completed spans [t0, t1] plus point samples of
// counters.  The tracer never consults the engine — callers pass simulated
// timestamps — so it lives below every other layer.  Recording is a no-op
// unless the tracer is enabled; sites that build span names should guard
// with `if (tracer.on())` to skip the string work too.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cci::obs {

using TrackId = std::uint32_t;

class Tracer {
 public:
  struct Span {
    TrackId track = 0;
    std::string name;
    double t0 = 0.0;
    double t1 = 0.0;
  };
  struct CounterSample {
    std::string name;
    double t = 0.0;
    double value = 0.0;
  };
  struct Instant {
    TrackId track = 0;
    std::string name;
    double t = 0.0;
  };

  [[nodiscard]] bool on() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Intern a track row by name (idempotent; works while disabled so
  /// constructors can pre-resolve their tracks).
  TrackId track(const std::string& name);
  [[nodiscard]] const std::vector<std::string>& track_names() const { return track_names_; }

  /// Record a completed span on a track.  Ignores t1 < t0.
  void span(TrackId track, std::string name, double t0, double t1) {
    if (!enabled_ || t1 < t0) return;
    spans_.push_back({track, std::move(name), t0, t1});
  }
  /// Record a point-in-time value of a named counter series.
  void counter_sample(std::string name, double t, double value) {
    if (!enabled_) return;
    counter_samples_.push_back({std::move(name), t, value});
  }
  /// Record an instantaneous event on a track.
  void instant(TrackId track, std::string name, double t) {
    if (!enabled_) return;
    instants_.push_back({track, std::move(name), t});
  }

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<CounterSample>& counter_samples() const {
    return counter_samples_;
  }
  [[nodiscard]] const std::vector<Instant>& instants() const { return instants_; }

  /// Spans recorded on tracks whose name starts with `prefix` (test helper).
  [[nodiscard]] std::size_t span_count_on(const std::string& prefix) const;

  /// Drop all recorded events; interned tracks survive.
  void clear() {
    spans_.clear();
    counter_samples_.clear();
    instants_.clear();
  }

 private:
  bool enabled_ = false;
  std::map<std::string, TrackId> track_ids_;
  std::vector<std::string> track_names_;
  std::vector<Span> spans_;
  std::vector<CounterSample> counter_samples_;
  std::vector<Instant> instants_;
};

}  // namespace cci::obs
