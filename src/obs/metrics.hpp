// Unified metrics layer: typed counters/gauges/histograms in one Registry.
//
// This is the simulator's stand-in for a perf-counter/Prometheus stack: every
// layer (sim, net, mpi, runtime, hw, core) registers named metrics under the
// `layer.component.metric` scheme and bumps them through stable handles.  The
// design goals, in order:
//
//  * near-zero overhead when disabled — every mutation is a single
//    predictable branch on the owning registry's enabled flag, and the whole
//    call site can additionally be compiled out with -DCCI_OBS_DISABLE;
//  * determinism — snapshots iterate metrics in name order, histogram
//    buckets are value-deterministic (no RNG, no wall clock), so two
//    identical simulations produce byte-identical snapshots;
//  * stable handles — metric objects live as long as their registry and are
//    never invalidated by reset(), so instrumented objects may cache raw
//    pointers at construction time.
//
// The simulator is single-threaded by construction (one discrete-event loop),
// so the registry performs no locking.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// Compile-time kill switch: with -DCCI_OBS_DISABLE all mutations become
// no-ops (the registry still exists so handles stay valid).
#ifndef CCI_OBS_DISABLE
#define CCI_OBS_COMPILED_IN 1
#else
#define CCI_OBS_COMPILED_IN 0
#endif

namespace cci::obs {

/// Monotonically increasing sum (events dispatched, bytes moved, ...).
class Counter {
 public:
  void add(double n = 1.0) {
#if CCI_OBS_COMPILED_IN
    if (*enabled_) value_ += n;
#else
    (void)n;
#endif
  }
  [[nodiscard]] double value() const { return value_; }

 private:
  friend class Registry;
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  double value_ = 0.0;
};

/// Last-written value plus the running maximum (queue depths, lock delays).
class Gauge {
 public:
  void set(double v) {
#if CCI_OBS_COMPILED_IN
    if (*enabled_) {
      value_ = v;
      if (v > max_) max_ = v;
    }
#else
    (void)v;
#endif
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  friend class Registry;
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  double value_ = 0.0;
  double max_ = 0.0;
};

/// HDR-style log-linear histogram for positive doubles.
///
/// Buckets are octaves (powers of two) split into kSubBuckets linear
/// sub-buckets, giving a fixed ~3% relative resolution over the full double
/// range — the classic high-dynamic-range layout, suited to latencies that
/// span nanoseconds to seconds.  Non-positive values land in a dedicated
/// underflow bucket.
class Histogram {
 public:
  static constexpr int kSubBuckets = 32;

  void record(double v) {
#if CCI_OBS_COMPILED_IN
    if (!*enabled_) return;
    bump_bucket(bucket_index(v), 1);
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
#else
    (void)v;
#endif
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Value at quantile `q` (clamped to [0,1]): the representative value of
  /// the bucket containing the ceil(q * count)-th recorded sample (1-based;
  /// q = 0 maps to the first sample).  Exact to bucket resolution, with
  /// deterministic tie-breaking: when the target rank lands exactly on a
  /// bucket boundary the lower-indexed bucket wins, so two histograms with
  /// identical buckets always report identical quantiles.  Shared by the
  /// snapshot summary, trace::metrics_table and the obs::Sampler.
  [[nodiscard]] double value_at_quantile(double q) const;
  /// Alias for value_at_quantile() (historical name).
  [[nodiscard]] double quantile(double q) const { return value_at_quantile(q); }

  /// Deterministic bucket index for a value (kUnderflow for v <= 0).
  static int bucket_index(double v);
  /// Representative (geometric-mid) value of a bucket.
  static double bucket_value(int index);

  static constexpr int kUnderflow = INT32_MIN;

  /// Sparse buckets as (index, count) pairs sorted by index — same iteration
  /// order as the std::map this replaces, but contiguous: record() is a
  /// binary search plus increment, with an insertion only the first time a
  /// bucket is hit (allocation-free at steady state).
  using BucketVec = std::vector<std::pair<int, std::uint64_t>>;
  [[nodiscard]] const BucketVec& buckets() const { return buckets_; }

 private:
  friend class Registry;
  explicit Histogram(const bool* enabled) : enabled_(enabled) {}

  void bump_bucket(int index, std::uint64_t n) {
    auto it = std::lower_bound(
        buckets_.begin(), buckets_.end(), index,
        [](const std::pair<int, std::uint64_t>& b, int i) { return b.first < i; });
    if (it != buckets_.end() && it->first == index)
      it->second += n;
    else
      buckets_.insert(it, {index, n});
  }

  const bool* enabled_;
  BucketVec buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Immutable view of every metric at one point in time, name-sorted.
struct Snapshot {
  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram };
    std::string name;
    Kind kind = Kind::kCounter;
    double value = 0.0;  ///< counter total / gauge current value
    double max = 0.0;    ///< gauge or histogram max
    // Histogram-only summary:
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::vector<Entry> entries;

  /// nullptr when no metric of that name exists.  string_view key: callers
  /// assembling names in stack buffers never materialize a std::string.
  [[nodiscard]] const Entry* find(std::string_view name) const;
  /// Counter/gauge value by name; 0 when absent — indistinguishable from a
  /// true zero, so prefer try_value_of() wherever absence matters.
  [[nodiscard]] double value_of(std::string_view name) const;
  /// Counter/gauge value by name, or nullopt when no such metric exists
  /// (result-JSON and perf-guard paths report absent metrics as absent
  /// instead of a fake 0).
  [[nodiscard]] std::optional<double> try_value_of(std::string_view name) const;
};

class Tracer;

/// Owner of all metrics plus the span tracer.  Metrics follow the
/// `layer.component.metric` naming scheme (docs/OBSERVABILITY.md).
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The registry used by all instrumented layers: the thread's scoped
  /// override when one is installed (see ScopedThreadLocal), otherwise the
  /// process-wide instance.  Disabled at startup; benches/tests flip it on.
  static Registry& global();

  /// The process-wide registry, bypassing any thread-local override.
  static Registry& process();

  /// Install `r` as this thread's Registry::global() for the scope's
  /// lifetime.  The campaign engine gives each worker thread a private
  /// scratch registry this way, so concurrent simulation points never
  /// touch the (lock-free by design) process registry; the coordinator
  /// merges the scratches back deterministically with merge_from().
  class ScopedThreadLocal {
   public:
    explicit ScopedThreadLocal(Registry& r);
    ~ScopedThreadLocal();
    ScopedThreadLocal(const ScopedThreadLocal&) = delete;
    ScopedThreadLocal& operator=(const ScopedThreadLocal&) = delete;

   private:
    Registry* previous_;
  };

  /// Fold another registry's metrics into this one with commutative,
  /// order-independent semantics: counters add, gauges keep the maximum
  /// (value and max both become the max), histograms add bucket-wise.
  /// Integer-valued metrics therefore merge bit-exactly regardless of how
  /// points were partitioned across worker threads.
  void merge_from(const Registry& other);

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Find-or-create.  Returned references stay valid for the registry's
  /// lifetime; reset() zeroes values but never destroys metric objects.
  /// Lookup is heterogeneous (std::less<>): a string_view key only becomes
  /// a std::string on first registration, so re-registration paths that
  /// assemble names in stack buffers never touch the heap.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zero every metric and drop all trace events.  Handles stay valid, the
  /// enabled flag is unchanged.
  void reset();

  [[nodiscard]] Snapshot snapshot() const;

  /// Name-ordered metric iteration, one kind at a time (the sampler and
  /// exporters walk these; `fn(name, metric)` with const references).
  template <typename Fn>
  void visit_counters(Fn&& fn) const {
    for (const auto& [name, c] : counters_) fn(name, *c);
  }
  template <typename Fn>
  void visit_gauges(Fn&& fn) const {
    for (const auto& [name, g] : gauges_) fn(name, *g);
  }
  template <typename Fn>
  void visit_histograms(Fn&& fn) const {
    for (const auto& [name, h] : histograms_) fn(name, *h);
  }

  Tracer& tracer() { return *tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return *tracer_; }

 private:
  bool enabled_ = false;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::unique_ptr<Tracer> tracer_;
};

}  // namespace cci::obs
