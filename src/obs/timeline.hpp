// In-memory time-series store for the simulated-time metrics sampler.
//
// A TimelineStore holds (time, series, value) rows in simulated-time order:
// series names are interned once, rows land in fixed-size blocks recycled
// through a thread-local slab pool (sim/pool.hpp — header-only and
// dependency-free, so this is not a layering cycle), and the store is
// ring-bounded — when the row budget is exhausted the oldest block is
// dropped and recycled, so a long campaign can sample forever in O(bound)
// memory.  Campaign workers each get their own pool, so per-point stores
// create and destroy without touching the global heap at steady state.
//
// The tidy CSV export writes one row per sample — `time,series,value` with
// optional caller-supplied prefix columns (campaign, point) — which loads
// straight into pandas/R without reshaping.  Values round-trip through
// %.17g, so two byte-identical stores produce byte-identical CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/pool.hpp"

namespace cci::obs {

/// One sampled value of an interned series at a simulated-time instant.
struct TimelineRow {
  double time = 0.0;
  std::uint32_t series = 0;  ///< index into TimelineStore::series_names()
  double value = 0.0;
};

class TimelineStore {
 public:
  /// Default row bound: plenty for a full campaign point at a sane period,
  /// small enough that a runaway sampler cannot eat the machine.  Bounds
  /// round up to whole blocks (eviction drops the oldest block at a time).
  static constexpr std::size_t kDefaultMaxRows = 1u << 20;
  static constexpr std::size_t kBlockRows = 1024;

  explicit TimelineStore(std::size_t max_rows = kDefaultMaxRows);
  TimelineStore(TimelineStore&&) = default;
  TimelineStore& operator=(TimelineStore&&) = default;
  TimelineStore(const TimelineStore&) = delete;
  TimelineStore& operator=(const TimelineStore&) = delete;

  /// Intern a series name; ids are dense and stable for the store's life.
  std::uint32_t series(std::string_view name);
  [[nodiscard]] const std::vector<std::string>& series_names() const {
    return series_names_;
  }

  /// Append one row.  Rows must arrive in non-decreasing time order (the
  /// sampler guarantees this); the store does not re-sort.
  void append(double time, std::uint32_t series, double value);

  /// Retained rows, oldest first.  O(1) random access across blocks.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const TimelineRow& row(std::size_t i) const {
    return blocks_[i / kBlockRows]->rows[i % kBlockRows];
  }
  /// Rows evicted by the ring bound (0 unless the store overflowed).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void clear();

  /// Tidy CSV: one `time,series,value` line per retained row, preceded by
  /// caller-supplied prefix columns when given (`prefix_header` names them,
  /// `prefix` is the rendered cell text for every row).  `with_header`
  /// controls the header line so several stores can share one file.
  void write_csv(std::ostream& os, std::string_view prefix_header = {},
                 std::string_view prefix = {}, bool with_header = true) const;

 private:
  struct RowBlock : sim::RcPooled<RowBlock> {
    TimelineRow rows[kBlockRows];
  };
  static sim::SlabPool<RowBlock>& block_pool();

  std::size_t max_rows_;
  std::size_t size_ = 0;  ///< retained rows
  std::uint64_t dropped_ = 0;
  std::vector<sim::RcPtr<RowBlock>> blocks_;
  std::map<std::string, std::uint32_t, std::less<>> series_ids_;
  std::vector<std::string> series_names_;
};

}  // namespace cci::obs
