#include "obs/session.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cci::obs {

Session Session::from_env() {
  const char* trace = std::getenv("CCI_TRACE");
  if (trace != nullptr && trace[0] != '\0') return Session(trace);
  const char* metrics = std::getenv("CCI_METRICS");
  if (metrics != nullptr && metrics[0] != '\0' && metrics[0] != '0')
    return Session("", /*metrics_only=*/true);
  return Session();
}

Session::Session(std::string path, bool metrics_only)
    : active_(true), path_(std::move(path)) {
  Registry& reg = Registry::global();
  reg.set_enabled(true);
  if (!metrics_only && !path_.empty()) reg.tracer().set_enabled(true);
}

Session::Session(Session&& other) noexcept
    : active_(std::exchange(other.active_, false)),
      flushed_(other.flushed_),
      path_(std::move(other.path_)) {}

Session::~Session() { flush(); }

void Session::flush() {
  if (!tracing() || flushed_) return;
  flushed_ = true;
  if (write_chrome_trace_file(path_, Registry::global())) {
    std::fprintf(stderr, "[cci-obs] Chrome trace written to %s (open in Perfetto)\n",
                 path_.c_str());
  } else {
    std::fprintf(stderr, "[cci-obs] failed to write trace to %s\n", path_.c_str());
  }
}

}  // namespace cci::obs
