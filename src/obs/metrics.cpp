#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/tracer.hpp"
#include "sched/point.hpp"

#ifdef CCI_SCHED
#include "sched/explorer.hpp"
#endif

namespace cci::obs {

// ---- Histogram -------------------------------------------------------------

int Histogram::bucket_index(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return kUnderflow;
  int exp = 0;
  double mant = std::frexp(v, &exp);  // mant in [0.5, 1)
  int sub = static_cast<int>((mant - 0.5) * 2.0 * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // guard rounding at mant->1
  return exp * kSubBuckets + sub;
}

double Histogram::bucket_value(int index) {
  if (index == kUnderflow) return 0.0;
  int exp = index >= 0 ? index / kSubBuckets : (index - kSubBuckets + 1) / kSubBuckets;
  int sub = index - exp * kSubBuckets;
  // Midpoint of the sub-bucket [0.5 + sub/2S, 0.5 + (sub+1)/2S) * 2^exp.
  double mant = 0.5 + (static_cast<double>(sub) + 0.5) / (2.0 * kSubBuckets);
  return std::ldexp(mant, exp);
}

double Histogram::value_at_quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  // Index-sorted walk; `seen >= target` makes the lower-indexed bucket win
  // exact boundary ranks (the tie-break documented in the header).
  for (const auto& [index, n] : buckets_) {
    seen += n;
    if (seen >= target) return bucket_value(index);
  }
  return max_;  // buckets_ is index-sorted, so this walk matches the old map
}

// ---- Snapshot --------------------------------------------------------------

const Snapshot::Entry* Snapshot::find(std::string_view name) const {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const Entry& e, std::string_view n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

double Snapshot::value_of(std::string_view name) const {
  const Entry* e = find(name);
  return e != nullptr ? e->value : 0.0;
}

std::optional<double> Snapshot::try_value_of(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) return std::nullopt;
  return e->value;
}

// ---- Registry --------------------------------------------------------------

Registry::Registry() : tracer_(std::make_unique<Tracer>()) {}
Registry::~Registry() = default;

namespace {
thread_local Registry* tls_registry = nullptr;
}  // namespace

Registry& Registry::process() {
  static Registry instance;
  return instance;
}

Registry& Registry::global() {
  return tls_registry != nullptr ? *tls_registry : process();
}

Registry::ScopedThreadLocal::ScopedThreadLocal(Registry& r) : previous_(tls_registry) {
  tls_registry = &r;
}

Registry::ScopedThreadLocal::~ScopedThreadLocal() { tls_registry = previous_; }

void Registry::merge_from(const Registry& other) {
  CCI_SCHED_POINT(kRegistryMerge, 0);
#ifdef CCI_SCHED
  if (sched::mutation_merge_overwrite()) {
    // Planted bug for the explorer's mutation test: last-writer-wins
    // instead of commutative addition, so merged totals depend on merge
    // order and partition — exactly the defect class the oracle must catch.
    for (const auto& [name, c] : other.counters_)
      if (c->value_ != 0.0) counter(name).value_ = c->value_;
  } else {
    for (const auto& [name, c] : other.counters_)
      if (c->value_ != 0.0) counter(name).value_ += c->value_;
  }
#else
  for (const auto& [name, c] : other.counters_)
    if (c->value_ != 0.0) counter(name).value_ += c->value_;
#endif
  for (const auto& [name, g] : other.gauges_) {
    Gauge& mine = gauge(name);
    if (g->max_ > mine.max_) mine.max_ = g->max_;
    if (mine.value_ < mine.max_) mine.value_ = mine.max_;
  }
  for (const auto& [name, h] : other.histograms_) {
    if (h->count_ == 0) continue;
    Histogram& mine = histogram(name);
    for (const auto& [index, n] : h->buckets_) mine.bump_bucket(index, n);
    if (mine.count_ == 0 || h->min_ < mine.min_) mine.min_ = h->min_;
    if (mine.count_ == 0 || h->max_ > mine.max_) mine.max_ = h->max_;
    mine.count_ += h->count_;
    mine.sum_ += h->sum_;
  }
}

namespace {
/// Heterogeneous find-or-create shared by the three metric kinds: the
/// string_view key is materialized only when a new slot is inserted.
template <class Map, class Make>
auto& find_or_create(Map& map, std::string_view name, Make make) {
  auto it = map.find(name);
  if (it == map.end()) it = map.emplace(std::string(name), make()).first;
  return *it->second;
}
}  // namespace

Counter& Registry::counter(std::string_view name) {
  return find_or_create(counters_, name, [this] {
    return std::unique_ptr<Counter>(new Counter(&enabled_));
  });
}

Gauge& Registry::gauge(std::string_view name) {
  return find_or_create(gauges_, name, [this] {
    return std::unique_ptr<Gauge>(new Gauge(&enabled_));
  });
}

Histogram& Registry::histogram(std::string_view name) {
  return find_or_create(histograms_, name, [this] {
    return std::unique_ptr<Histogram>(new Histogram(&enabled_));
  });
}

void Registry::reset() {
  for (auto& [name, c] : counters_) c->value_ = 0.0;
  for (auto& [name, g] : gauges_) {
    g->value_ = 0.0;
    g->max_ = 0.0;
  }
  for (auto& [name, h] : histograms_) {
    h->buckets_.clear();
    h->count_ = 0;
    h->sum_ = h->min_ = h->max_ = 0.0;
  }
  tracer_->clear();
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.entries.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = Snapshot::Entry::Kind::kCounter;
    e.value = c->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = Snapshot::Entry::Kind::kGauge;
    e.value = g->value();
    e.max = g->max();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    Snapshot::Entry e;
    e.name = name;
    e.kind = Snapshot::Entry::Kind::kHistogram;
    e.count = h->count();
    e.sum = h->sum();
    e.value = h->mean();
    e.min = h->min();
    e.max = h->max();
    e.p50 = h->value_at_quantile(0.5);
    e.p90 = h->value_at_quantile(0.9);
    e.p99 = h->value_at_quantile(0.99);
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const Snapshot::Entry& a, const Snapshot::Entry& b) { return a.name < b.name; });
  return snap;
}

}  // namespace cci::obs
