#include "obs/timeline.hpp"

#include <cstdio>
#include <ostream>

namespace cci::obs {

sim::SlabPool<TimelineStore::RowBlock>& TimelineStore::block_pool() {
  // One pool per thread, like FrameArena: campaign workers never contend,
  // and blocks recycle across the per-point stores a worker churns through.
  thread_local sim::SlabPool<RowBlock> pool("timeline_block", /*objs_per_slab=*/8);
  return pool;
}

TimelineStore::TimelineStore(std::size_t max_rows) {
  if (max_rows < kBlockRows) max_rows = kBlockRows;
  // Whole-block bound: eviction drops the oldest (always full) block.
  max_rows_ = (max_rows + kBlockRows - 1) / kBlockRows * kBlockRows;
}

std::uint32_t TimelineStore::series(std::string_view name) {
  auto it = series_ids_.find(name);
  if (it != series_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(series_names_.size());
  series_ids_.emplace(std::string(name), id);
  series_names_.emplace_back(name);
  return id;
}

void TimelineStore::append(double time, std::uint32_t series, double value) {
  if (size_ == max_rows_) {
    // Ring bound reached: every block is full; recycle the oldest.
    blocks_.erase(blocks_.begin());
    size_ -= kBlockRows;
    dropped_ += kBlockRows;
  }
  if (size_ == blocks_.size() * kBlockRows) blocks_.push_back(block_pool().make());
  blocks_[size_ / kBlockRows]->rows[size_ % kBlockRows] = {time, series, value};
  ++size_;
}

void TimelineStore::clear() {
  blocks_.clear();
  size_ = 0;
  dropped_ = 0;
}

void TimelineStore::write_csv(std::ostream& os, std::string_view prefix_header,
                              std::string_view prefix, bool with_header) const {
  if (with_header) {
    if (!prefix_header.empty()) os << prefix_header << ',';
    os << "time,series,value\n";
  }
  char buf[64];
  for (std::size_t i = 0; i < size_; ++i) {
    const TimelineRow& r = row(i);
    if (!prefix.empty()) os << prefix << ',';
    std::snprintf(buf, sizeof buf, "%.17g", r.time);
    os << buf << ',' << series_names_[r.series] << ',';
    std::snprintf(buf, sizeof buf, "%.17g", r.value);
    os << buf << '\n';
  }
}

}  // namespace cci::obs
