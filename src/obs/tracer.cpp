#include "obs/tracer.hpp"

namespace cci::obs {

TrackId Tracer::track(const std::string& name) {
  auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  auto id = static_cast<TrackId>(track_names_.size());
  track_ids_.emplace(name, id);
  track_names_.push_back(name);
  return id;
}

std::size_t Tracer::span_count_on(const std::string& prefix) const {
  std::size_t n = 0;
  for (const Span& s : spans_) {
    const std::string& track = track_names_[s.track];
    if (track.compare(0, prefix.size(), prefix) == 0) ++n;
  }
  return n;
}

}  // namespace cci::obs
