#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cci::obs {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_ts(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);  // sim s -> trace us
  return buf;
}

struct TimedEvent {
  double ts = 0.0;
  char ph = 'B';                      // B, E, i, or C
  std::uint32_t tid = 0;              // lane id (ignored for C)
  const std::string* name = nullptr;  // span/counter name
  double value = 0.0;                 // C only
};

/// One overflow lane of a track: open-span stack + its emitted events.
/// Events within a lane are appended in non-decreasing ts order by
/// construction (see pop/push discipline below).
struct Lane {
  std::vector<const Tracer::Span*> open;
  std::vector<TimedEvent> events;

  void pop_until(double t) {
    while (!open.empty() && open.back()->t1 <= t) {
      events.push_back({open.back()->t1, 'E', 0, &open.back()->name, 0.0});
      open.pop_back();
    }
  }
  [[nodiscard]] bool fits(const Tracer::Span& s) const {
    return open.empty() || s.t1 <= open.back()->t1;
  }
  void push(const Tracer::Span& s) {
    events.push_back({s.t0, 'B', 0, &s.name, 0.0});
    open.push_back(&s);
  }
  void flush() {
    while (!open.empty()) {
      events.push_back({open.back()->t1, 'E', 0, &open.back()->name, 0.0});
      open.pop_back();
    }
  }
};

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  const auto& track_names = tracer.track_names();

  // Group spans by track, then sort each group by (start asc, end desc) so
  // containing spans precede the spans they contain.
  std::vector<std::vector<const Tracer::Span*>> per_track(track_names.size());
  for (const Tracer::Span& s : tracer.spans())
    per_track[s.track].push_back(&s);
  for (auto& spans : per_track) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Tracer::Span* a, const Tracer::Span* b) {
                       if (a->t0 != b->t0) return a->t0 < b->t0;
                       return a->t1 > b->t1;
                     });
  }

  // Lane assignment: each span goes to the first lane where, after closing
  // spans that ended by its start, it either opens fresh or nests inside
  // the lane's top open span.  Guarantees every lane's B/E stream is a
  // properly nested, ts-monotonic sequence.
  std::vector<TimedEvent> events;
  struct LaneName {
    std::uint32_t tid;
    std::string label;
    std::size_t track;
  };
  std::vector<LaneName> lane_names;
  std::uint32_t next_tid = 0;

  for (std::size_t t = 0; t < per_track.size(); ++t) {
    std::vector<Lane> lanes;
    for (const Tracer::Span* s : per_track[t]) {
      bool placed = false;
      for (Lane& lane : lanes) {
        lane.pop_until(s->t0);
        if (lane.fits(*s)) {
          lane.push(*s);
          placed = true;
          break;
        }
      }
      if (!placed) {
        lanes.emplace_back();
        lanes.back().push(*s);
      }
    }
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      lanes[l].flush();
      std::uint32_t tid = next_tid++;
      std::string label = track_names[t];
      if (l > 0) label += " #" + std::to_string(l + 1);
      lane_names.push_back({tid, std::move(label), t});
      for (TimedEvent ev : lanes[l].events) {
        ev.tid = tid;
        events.push_back(ev);
      }
    }
    // Tracks with only instants/no spans still deserve a row.
    if (lanes.empty()) {
      lane_names.push_back({next_tid++, track_names[t], t});
    }
  }

  // Map instants onto their track's first lane.
  std::vector<std::uint32_t> first_lane_of_track(track_names.size(), 0);
  for (const LaneName& ln : lane_names)
    if (ln.label == track_names[ln.track]) first_lane_of_track[ln.track] = ln.tid;
  for (const Tracer::Instant& i : tracer.instants())
    events.push_back({i.t, 'i', first_lane_of_track[i.track], &i.name, 0.0});

  for (const Tracer::CounterSample& c : tracer.counter_samples())
    events.push_back({c.t, 'C', 0, &c.name, c.value});

  // Global monotonic ts order; stable so each lane's internal B/E
  // discipline survives the merge.
  std::stable_sort(events.begin(), events.end(),
                   [](const TimedEvent& a, const TimedEvent& b) { return a.ts < b.ts; });

  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  sep();
  os << R"({"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "cci-sim"}})";
  for (const LaneName& ln : lane_names) {
    sep();
    os << R"({"ph": "M", "pid": 1, "tid": )" << ln.tid
       << R"(, "name": "thread_name", "args": {"name": ")" << escape(ln.label) << "\"}}";
    sep();
    os << R"({"ph": "M", "pid": 1, "tid": )" << ln.tid
       << R"(, "name": "thread_sort_index", "args": {"sort_index": )" << ln.tid << "}}";
  }
  for (const TimedEvent& ev : events) {
    sep();
    switch (ev.ph) {
      case 'B':
      case 'E':
        os << "{\"ph\": \"" << ev.ph << "\", \"pid\": 1, \"tid\": " << ev.tid
           << ", \"ts\": " << fmt_ts(ev.ts) << ", \"name\": \"" << escape(*ev.name) << "\"}";
        break;
      case 'i':
        os << "{\"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": " << ev.tid
           << ", \"ts\": " << fmt_ts(ev.ts) << ", \"name\": \"" << escape(*ev.name) << "\"}";
        break;
      case 'C':
        os << "{\"ph\": \"C\", \"pid\": 1, \"ts\": " << fmt_ts(ev.ts) << ", \"name\": \""
           << escape(*ev.name) << "\", \"args\": {\"value\": " << ev.value << "}}";
        break;
      default: break;
    }
  }
  os << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path, const Registry& registry) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os, registry.tracer());
  return static_cast<bool>(os);
}

}  // namespace cci::obs
