// Environment-driven observability session.
//
// `CCI_TRACE=<path>` turns the global registry + tracer on and, when the
// session object is destroyed (or flush()ed), writes the Chrome trace-event
// JSON to <path>.  Bench binaries construct one Session at the top of main
// so every run can be opened in Perfetto without recompiling.
// `CCI_METRICS=1` enables metrics collection without span recording.
#pragma once

#include <string>

namespace cci::obs {

class Session {
 public:
  /// Inspect CCI_TRACE / CCI_METRICS and arm the global registry
  /// accordingly.  Inactive (and free) when neither is set.
  static Session from_env();

  /// Arm the global registry and write the trace to `path` on destruction;
  /// an empty path records metrics only.
  explicit Session(std::string path, bool metrics_only = false);
  Session() = default;  ///< inactive
  ~Session();
  Session(Session&& other) noexcept;
  Session& operator=(Session&&) = delete;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// True when metrics (and possibly tracing) were enabled by this session.
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] bool tracing() const { return active_ && !path_.empty(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Write the Chrome trace now (no-op unless tracing).  Idempotent: the
  /// destructor will not write again.
  void flush();

 private:
  bool active_ = false;
  bool flushed_ = false;
  std::string path_;
};

}  // namespace cci::obs
