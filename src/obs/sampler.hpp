// Simulated-time metrics sampler: end-of-run totals -> timelines.
//
// A Sampler turns the registry's cumulative metrics into a deterministic
// time series: it fires on a fixed simulated-time tick grid (tick k at
// k * period, computed by multiplication so the grid never drifts) and
// records, per tick,
//
//   * every counter's delta since the previous tick (only when nonzero),
//   * every gauge's current value (only when it changed),
//   * every histogram's count delta plus its cumulative p50/p90/p99
//     (only when the count moved),
//
// into a TimelineStore.  Sampling sim-side state through the registry keeps
// the feed deterministic: two identical simulations produce byte-identical
// timelines regardless of thread count, sharding or CCI_SIM_POOLS — the
// deny lists below exist precisely to drop the metrics that are *not*
// simulation-deterministic (pool occupancy, wall-clock histograms).
//
// The engine drives the sampler from its event loop (Engine::set_sampler):
// advance_to(t) runs before the first event at any time >= the next tick,
// so the sample at tick T reflects every event strictly before T and none
// at T — the documented tie-break.  Detached, the cost is one pointer test
// per event; the 0-allocs/event guard runs with the sampler compiled in.
//
// When the tracer is enabled every appended row is mirrored as a tracer
// counter sample, which the Chrome exporter renders as Perfetto counter
// tracks — utilization timelines in the trace viewer for free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

namespace cci::obs {

struct SamplerConfig {
  /// Simulated seconds between ticks.  Must be > 0.
  double period = 1e-3;
  /// Metrics whose name starts with an entry are never sampled.
  std::vector<std::string> deny_prefixes{"sim.pool."};
  /// Metrics whose name contains an entry are never sampled.
  std::vector<std::string> deny_substrings{"wall_us"};
};

class Sampler {
 public:
  Sampler(Registry& registry, TimelineStore& store, SamplerConfig config = {});

  /// Fire every pending tick with tick time <= t, in order.  Called by the
  /// engine before dispatching events at time t and once more when a run
  /// drains; safe to call with non-monotonic t (no-op when behind).
  void advance_to(double t);

  [[nodiscard]] double next_tick() const { return next_tick_; }
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }
  [[nodiscard]] const SamplerConfig& config() const { return config_; }
  [[nodiscard]] TimelineStore& store() { return *store_; }

 private:
  struct Channel {
    bool denied = false;
    double last = 0.0;                ///< counter total / gauge value / hist count
    std::uint32_t series[4] = {0, 0, 0, 0};  ///< value (+ p50/p90/p99 for hists)
  };

  void take_sample(double t);
  Channel& channel(const void* metric, const std::string& name, bool histogram);
  [[nodiscard]] bool denied(const std::string& name) const;
  void emit(double t, std::uint32_t series, double value, bool mirror);

  Registry* registry_;
  TimelineStore* store_;
  SamplerConfig config_;
  std::uint64_t tick_index_ = 0;  ///< ticks fired so far
  double next_tick_;
  std::uint64_t samples_ = 0;
  std::unordered_map<const void*, Channel> channels_;
};

/// Ambient per-run observability request, consumed by InterferenceLab (and
/// anything else that owns an engine): when timeline_period > 0 and a store
/// is given, the lab attaches a Sampler to its engine; when attribution is
/// set it runs the flow model's interference profiler.  The campaign engine
/// installs this around each point so per-point sampling composes with
/// worker threads and the result cache without touching Scenario (and so
/// cache keys stay stable).
struct RunSampling {
  double timeline_period = 0.0;
  TimelineStore* timeline = nullptr;
  bool attribution = false;
  [[nodiscard]] bool sampling_on() const {
    return timeline_period > 0.0 && timeline != nullptr;
  }
};

/// The thread's current RunSampling (all-off by default).
[[nodiscard]] const RunSampling& run_sampling();

/// Install `config` as the thread's RunSampling for the scope's lifetime.
class ScopedRunSampling {
 public:
  explicit ScopedRunSampling(const RunSampling& config);
  ~ScopedRunSampling();
  ScopedRunSampling(const ScopedRunSampling&) = delete;
  ScopedRunSampling& operator=(const ScopedRunSampling&) = delete;

 private:
  RunSampling previous_;
};

}  // namespace cci::obs
