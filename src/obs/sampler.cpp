#include "obs/sampler.hpp"

#include <cassert>

#include "obs/tracer.hpp"

namespace cci::obs {

Sampler::Sampler(Registry& registry, TimelineStore& store, SamplerConfig config)
    : registry_(&registry), store_(&store), config_(std::move(config)) {
  assert(config_.period > 0.0);
  next_tick_ = config_.period;  // tick 0 (t = 0) would always be all-zero deltas
  tick_index_ = 1;
}

void Sampler::advance_to(double t) {
  while (next_tick_ <= t) {
    take_sample(next_tick_);
    next_tick_ = static_cast<double>(++tick_index_) * config_.period;
  }
}

bool Sampler::denied(const std::string& name) const {
  for (const std::string& p : config_.deny_prefixes)
    if (name.compare(0, p.size(), p) == 0) return true;
  for (const std::string& s : config_.deny_substrings)
    if (name.find(s) != std::string::npos) return true;
  return false;
}

Sampler::Channel& Sampler::channel(const void* metric, const std::string& name,
                                   bool histogram) {
  auto it = channels_.find(metric);
  if (it != channels_.end()) return it->second;
  Channel ch;
  ch.denied = denied(name);
  if (!ch.denied) {
    if (histogram) {
      ch.series[0] = store_->series(name + ".count");
      ch.series[1] = store_->series(name + ".p50");
      ch.series[2] = store_->series(name + ".p90");
      ch.series[3] = store_->series(name + ".p99");
    } else {
      ch.series[0] = store_->series(name);
    }
  }
  return channels_.emplace(metric, ch).first->second;
}

void Sampler::emit(double t, std::uint32_t series, double value, bool mirror) {
  store_->append(t, series, value);
  if (mirror)
    registry_->tracer().counter_sample(store_->series_names()[series], t, value);
}

void Sampler::take_sample(double t) {
  ++samples_;
  const bool mirror = registry_->tracer().on();
  registry_->visit_counters([&](const std::string& name, const Counter& c) {
    Channel& ch = channel(&c, name, /*histogram=*/false);
    if (ch.denied) return;
    const double delta = c.value() - ch.last;
    ch.last = c.value();
    if (delta != 0.0) emit(t, ch.series[0], delta, mirror);
  });
  registry_->visit_gauges([&](const std::string& name, const Gauge& g) {
    Channel& ch = channel(&g, name, /*histogram=*/false);
    if (ch.denied) return;
    if (g.value() != ch.last) {
      ch.last = g.value();
      emit(t, ch.series[0], g.value(), mirror);
    }
  });
  registry_->visit_histograms([&](const std::string& name, const Histogram& h) {
    Channel& ch = channel(&h, name, /*histogram=*/true);
    if (ch.denied) return;
    const double count = static_cast<double>(h.count());
    if (count == ch.last) return;
    emit(t, ch.series[0], count - ch.last, mirror);
    ch.last = count;
    emit(t, ch.series[1], h.value_at_quantile(0.5), mirror);
    emit(t, ch.series[2], h.value_at_quantile(0.9), mirror);
    emit(t, ch.series[3], h.value_at_quantile(0.99), mirror);
  });
}

// ---- ambient per-run config -------------------------------------------------

namespace {
thread_local RunSampling tls_run_sampling;
}  // namespace

const RunSampling& run_sampling() { return tls_run_sampling; }

ScopedRunSampling::ScopedRunSampling(const RunSampling& config)
    : previous_(tls_run_sampling) {
  tls_run_sampling = config;
}

ScopedRunSampling::~ScopedRunSampling() { tls_run_sampling = previous_; }

}  // namespace cci::obs
