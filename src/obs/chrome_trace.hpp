// Chrome trace-event JSON export (loadable in Perfetto / about://tracing).
//
// Simulated seconds map to trace microseconds (ts = t * 1e6).  Each interned
// track becomes a named thread row; overlapping spans within one track are
// spilled onto numbered overflow lanes so every emitted B/E pair nests
// properly — Perfetto refuses mis-nested duration events, and our MPI
// message lifecycles genuinely overlap.  Counter samples become "C" events.
// All timed events are emitted with monotonically non-decreasing `ts`.
#pragma once

#include <iosfwd>
#include <string>

namespace cci::obs {

class Registry;
class Tracer;

/// Write `{"traceEvents": [...]}` for everything the tracer recorded.
void write_chrome_trace(std::ostream& os, const Tracer& tracer);

/// Convenience: export the registry's tracer to `path`.  Returns false when
/// the file cannot be opened.
bool write_chrome_trace_file(const std::string& path, const Registry& registry);

}  // namespace cci::obs
