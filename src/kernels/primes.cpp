#include "kernels/primes.hpp"

namespace cci::kernels {

bool is_prime_naive(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t d = 2; d * d <= n; ++d)
    if (n % d == 0) return false;
  return true;
}

std::uint64_t count_primes(std::uint64_t lo, std::uint64_t hi) {
  std::uint64_t count = 0;
#pragma omp parallel for schedule(static) reduction(+ : count)
  for (std::int64_t n = static_cast<std::int64_t>(lo); n < static_cast<std::int64_t>(hi); ++n)
    if (is_prime_naive(static_cast<std::uint64_t>(n))) ++count;
  return count;
}

double prime_trial_divisions(std::uint64_t lo, std::uint64_t hi) {
  double total = 0.0;
  for (std::uint64_t n = lo; n < hi; ++n) {
    if (n < 2) continue;
    std::uint64_t d = 2;
    for (; d * d <= n; ++d)
      if (n % d == 0) break;
    total += static_cast<double>(d - 1);
  }
  return total;
}

hw::KernelTraits prime_traits() {
  // A trial division is ~an integer divide: charge 4 "flop-equivalents"
  // (2 cycles at 2 ops/cycle scalar issue) and zero bytes.
  return hw::KernelTraits{"primes", 4.0, 0.0, hw::VectorClass::kScalar};
}

}  // namespace cci::kernels
