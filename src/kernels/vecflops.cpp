#include "kernels/vecflops.hpp"

namespace cci::kernels {

VecFlops::VecFlops() {
  for (std::size_t i = 0; i < kLanes; ++i) {
    x_[i] = 1.0 + static_cast<double>(i) * 1e-3;
    y_[i] = 0.5;
  }
}

double VecFlops::run(std::size_t fma_ops) {
  // Multiplier chosen so the value orbit stays bounded: x <- x*a + b with
  // |a| < 1 converges, keeping the loop numerically stable at any length.
  const double a = 0.999999;
  const double b = 1e-6;
  std::array<double, kLanes> x = x_;
  for (std::size_t op = 0; op < fma_ops; ++op) {
    const std::size_t lane_base = 0;
    // The compiler vectorises this fixed-width inner loop to one FMA per
    // lane group; semantically it is 8 independent chains.
    for (std::size_t l = lane_base; l < kLanes; ++l) x[l] = x[l] * a + b;
  }
  double sum = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) sum += x[l];
  x_ = x;
  return sum;
}

hw::KernelTraits VecFlops::traits() {
  return hw::KernelTraits{"vecflops", 16.0, 0.0, hw::VectorClass::kAvx512};
}

}  // namespace cci::kernels
