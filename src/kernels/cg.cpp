#include "kernels/cg.hpp"

#include <cmath>

namespace cci::kernels {

CgResult cg_solve(const Matrix& a, const std::vector<double>& b, std::vector<double>& x,
                  double tol, int max_iter) {
  const std::size_t n = b.size();
  std::vector<double> r(n), p(n), q(n);
  gemv(a, x, q);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - q[i];
  p = r;
  double rho = dot(r, r);
  const double b_norm = std::sqrt(dot(b, b));
  const double stop = tol * (b_norm > 0 ? b_norm : 1.0);

  CgResult res;
  for (int it = 0; it < max_iter; ++it) {
    if (std::sqrt(rho) <= stop) {
      res.converged = true;
      break;
    }
    gemv(a, p, q);
    double alpha = rho / dot(p, q);
    axpy(alpha, p, x);
    axpy(-alpha, q, r);
    double rho_new = dot(r, r);
    double beta = rho_new / rho;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rho = rho_new;
    res.iterations = it + 1;
  }
  res.residual = std::sqrt(rho);
  res.converged = res.converged || res.residual <= stop;
  return res;
}

CsrMatrix CsrMatrix::laplacian2d(std::size_t side) {
  CsrMatrix m;
  m.n = side * side;
  m.row_ptr.reserve(m.n + 1);
  m.row_ptr.push_back(0);
  auto idx = [side](std::size_t i, std::size_t j) { return i * side + j; };
  for (std::size_t i = 0; i < side; ++i)
    for (std::size_t j = 0; j < side; ++j) {
      if (i > 0) {
        m.col.push_back(idx(i - 1, j));
        m.val.push_back(-1.0);
      }
      if (j > 0) {
        m.col.push_back(idx(i, j - 1));
        m.val.push_back(-1.0);
      }
      m.col.push_back(idx(i, j));
      m.val.push_back(4.0);
      if (j + 1 < side) {
        m.col.push_back(idx(i, j + 1));
        m.val.push_back(-1.0);
      }
      if (i + 1 < side) {
        m.col.push_back(idx(i + 1, j));
        m.val.push_back(-1.0);
      }
      m.row_ptr.push_back(m.col.size());
    }
  return m;
}

void CsrMatrix::spmv(const std::vector<double>& x, std::vector<double>& y) const {
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    const auto row = static_cast<std::size_t>(i);
    double acc = 0.0;
    for (std::size_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) acc += val[k] * x[col[k]];
    y[row] = acc;
  }
}

CgResult cg_solve_csr(const CsrMatrix& a, const std::vector<double>& b, std::vector<double>& x,
                      double tol, int max_iter) {
  const std::size_t n = b.size();
  std::vector<double> r(n), p(n), q(n);
  a.spmv(x, q);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - q[i];
  p = r;
  double rho = dot(r, r);
  const double b_norm = std::sqrt(dot(b, b));
  const double stop = tol * (b_norm > 0 ? b_norm : 1.0);

  CgResult res;
  for (int it = 0; it < max_iter; ++it) {
    if (std::sqrt(rho) <= stop) {
      res.converged = true;
      break;
    }
    a.spmv(p, q);
    double alpha = rho / dot(p, q);
    axpy(alpha, p, x);
    axpy(-alpha, q, r);
    double rho_new = dot(r, r);
    double beta = rho_new / rho;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rho = rho_new;
    res.iterations = it + 1;
  }
  res.residual = std::sqrt(rho);
  res.converged = res.converged || res.residual <= stop;
  return res;
}

hw::KernelTraits cg_gemv_traits() {
  // One iteration = one matrix element: multiply+add over 8 streamed bytes.
  return hw::KernelTraits{"cg-gemv", 2.0, 8.0, hw::VectorClass::kSse};
}

hw::KernelTraits cg_gemv_traits_for(std::size_t n) {
  hw::KernelTraits t = cg_gemv_traits();
  t.working_set_bytes = static_cast<double>(n) * static_cast<double>(n) * sizeof(double);
  return t;
}

hw::KernelTraits gemm_tile_traits(std::size_t tile) {
  const double t = static_cast<double>(tile);
  // One iteration = one b x b x b tile pass: 2 t^3 flops, 3 tiles of DRAM
  // traffic (A and B tiles read, C tile updated).
  return hw::KernelTraits{"gemm-tile" + std::to_string(tile), 2.0 * t * t * t,
                          24.0 * t * t, hw::VectorClass::kAvx512};
}

}  // namespace cci::kernels
