#include "kernels/stream.hpp"

#include <cmath>

namespace cci::kernels {

StreamArrays::StreamArrays(std::size_t n, double scalar)
    : a_(n), b_(n), c_(n), scalar_(scalar) {
  for (std::size_t i = 0; i < n; ++i) {
    a_[i] = 1.0 + static_cast<double>(i % 1024) * 0.5;
    b_[i] = 2.0 - static_cast<double>(i % 512) * 0.25;
    c_[i] = 0.0;
  }
}

std::size_t StreamArrays::copy() {
  const std::size_t n = a_.size();
  double* __restrict b = b_.data();
  const double* __restrict a = a_.data();
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i)
    b[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)];
  return n * 16;
}

std::size_t StreamArrays::triad() {
  const std::size_t n = a_.size();
  double* __restrict c = c_.data();
  const double* __restrict a = a_.data();
  const double* __restrict b = b_.data();
  const double s = scalar_;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i)
    c[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>(i)] + s * b[static_cast<std::size_t>(i)];
  return n * 24;
}

bool StreamArrays::verify_copy() const {
  for (std::size_t i = 0; i < a_.size(); ++i)
    if (b_[i] != a_[i]) return false;
  return true;
}

bool StreamArrays::verify_triad() const {
  for (std::size_t i = 0; i < a_.size(); ++i)
    if (c_[i] != a_[i] + scalar_ * b_[i]) return false;
  return true;
}

hw::KernelTraits copy_traits() {
  return hw::KernelTraits{"stream-copy", 0.0, 16.0, hw::VectorClass::kSse};
}

hw::KernelTraits triad_traits() {
  return hw::KernelTraits{"stream-triad", 2.0, 24.0, hw::VectorClass::kSse};
}

}  // namespace cci::kernels
