#include "kernels/stencil.hpp"

#include <cmath>

namespace cci::kernels {

Stencil3D::Stencil3D(std::size_t nx, std::size_t ny, std::size_t nz)
    : nx_(nx), ny_(ny), nz_(nz), in_(nx * ny * nz), out_(nx * ny * nz, 0.0) {
  for (std::size_t i = 0; i < nx_; ++i)
    for (std::size_t j = 0; j < ny_; ++j)
      for (std::size_t k = 0; k < nz_; ++k)
        in_[idx(i, j, k)] = std::sin(0.1 * static_cast<double>(i)) +
                            0.5 * std::cos(0.2 * static_cast<double>(j)) +
                            0.25 * static_cast<double>(k % 7);
}

std::size_t Stencil3D::sweep() {
  const double c0 = kC0, c1 = kC1;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::ptrdiff_t ii = 1; ii < static_cast<std::ptrdiff_t>(nx_ - 1); ++ii)
    for (std::ptrdiff_t jj = 1; jj < static_cast<std::ptrdiff_t>(ny_ - 1); ++jj) {
      const auto i = static_cast<std::size_t>(ii);
      const auto j = static_cast<std::size_t>(jj);
      for (std::size_t k = 1; k < nz_ - 1; ++k) {
        out_[idx(i, j, k)] =
            c0 * in_[idx(i, j, k)] +
            c1 * (in_[idx(i - 1, j, k)] + in_[idx(i + 1, j, k)] + in_[idx(i, j - 1, k)] +
                  in_[idx(i, j + 1, k)] + in_[idx(i, j, k - 1)] + in_[idx(i, j, k + 1)]);
      }
    }
  return interior_points();
}

bool Stencil3D::verify() const {
  // Spot-check a deterministic sample of interior points.
  for (std::size_t i = 1; i < nx_ - 1; i += 3)
    for (std::size_t j = 1; j < ny_ - 1; j += 5)
      for (std::size_t k = 1; k < nz_ - 1; k += 7) {
        double want = kC0 * in_[idx(i, j, k)] +
                      kC1 * (in_[idx(i - 1, j, k)] + in_[idx(i + 1, j, k)] +
                             in_[idx(i, j - 1, k)] + in_[idx(i, j + 1, k)] +
                             in_[idx(i, j, k - 1)] + in_[idx(i, j, k + 1)]);
        if (std::abs(out_[idx(i, j, k)] - want) > 1e-13 * (1.0 + std::abs(want)))
          return false;
      }
  return true;
}

hw::KernelTraits Stencil3D::traits() {
  // 7 loads amortized by cache reuse to ~1 streaming read + 1 write-allocate
  // write = 16 B/point; 1 multiply + 6 adds + 1 multiply ~ 8 flops.
  return hw::KernelTraits{"stencil7", 8.0, 16.0, hw::VectorClass::kSse};
}

}  // namespace cci::kernels
