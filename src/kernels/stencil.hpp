// 7-point 3D stencil — the memory-bound kernel family of Langguth et
// al. [12], whose bandwidth-sharing model we compare against.
//
// One sweep: out[i,j,k] = c0*in[i,j,k] + c1*(6 neighbours).  Real,
// verifiable implementation plus traits: 8 flops per point, ~16 DRAM
// bytes per point for large grids (in read + out write; neighbour reuse
// hits cache).
#pragma once

#include <cstddef>
#include <vector>

#include "hw/workload.hpp"

namespace cci::kernels {

class Stencil3D {
 public:
  Stencil3D(std::size_t nx, std::size_t ny, std::size_t nz);

  /// One Jacobi sweep from `in_` to `out_`; returns interior points updated.
  std::size_t sweep();
  /// Swap in/out (double buffering).
  void swap_buffers() { in_.swap(out_); }

  /// Verify one sweep against a scalar reference on a sampled subset.
  [[nodiscard]] bool verify() const;

  [[nodiscard]] std::size_t interior_points() const {
    return (nx_ - 2) * (ny_ - 2) * (nz_ - 2);
  }
  double at_in(std::size_t i, std::size_t j, std::size_t k) const {
    return in_[idx(i, j, k)];
  }
  double at_out(std::size_t i, std::size_t j, std::size_t k) const {
    return out_[idx(i, j, k)];
  }

  /// Simulator traits: 8 flops / 16 DRAM bytes per point -> AI 0.5 flop/B.
  static hw::KernelTraits traits();

 private:
  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j, std::size_t k) const {
    return (i * ny_ + j) * nz_ + k;
  }
  std::size_t nx_, ny_, nz_;
  std::vector<double> in_, out_;
  static constexpr double kC0 = 0.4;
  static constexpr double kC1 = 0.1;
};

}  // namespace cci::kernels
