// Minimal dense linear algebra used by the GEMM and CG kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cci::kernels {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  double& at(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }
  double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  /// Deterministic pseudo-random fill in [-1, 1].
  void randomize(std::uint64_t seed);
  /// Make the matrix symmetric positive definite: A <- (A + A^T)/2 + n*I.
  void make_spd();

  [[nodiscard]] double frobenius_distance(const Matrix& other) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// C += A * B, straightforward triple loop (reference).
void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c);

/// C += A * B, cache-blocked with `block`-sized tiles (OpenMP over tiles).
void gemm_blocked(const Matrix& a, const Matrix& b, Matrix& c, std::size_t block);

/// y = A * x.
void gemv(const Matrix& a, const std::vector<double>& x, std::vector<double>& y);

double dot(const std::vector<double>& x, const std::vector<double>& y);
/// y += alpha * x.
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

}  // namespace cci::kernels
