// Additional memory-access-pattern kernels: matrix transpose (strided
// streaming) and GUPS-style random updates (latency-bound traffic).
//
// Together with STREAM/TRIAD (unit stride), the cursor TRIAD (tunable AI)
// and the dense kernels, these cover the access-pattern axes the
// interference study cares about.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/workload.hpp"

namespace cci::kernels {

/// Out-of-place blocked matrix transpose: B = A^T.
class Transpose {
 public:
  explicit Transpose(std::size_t n, std::size_t block = 32);

  /// One full transpose; returns bytes moved (16 per element).
  std::size_t run();
  [[nodiscard]] bool verify() const;
  [[nodiscard]] std::size_t size() const { return n_; }

  /// Strided writes defeat some prefetching: slightly worse per-byte cost
  /// than STREAM, same arithmetic intensity class (0 flops).
  static hw::KernelTraits traits();

 private:
  std::size_t n_, block_;
  std::vector<double> a_, b_;
};

/// GUPS-style random updates: table[h] ^= h over a pseudo-random stream.
/// Every access is a dependent DRAM-latency-bound transaction.
class RandomAccess {
 public:
  explicit RandomAccess(std::size_t table_words);

  /// Perform `updates` updates; returns a checksum.
  std::uint64_t run(std::size_t updates);
  /// The table must be restorable: running the same updates twice returns
  /// the table to its initial state (xor involution) — used for verify.
  [[nodiscard]] bool verify_involution(std::size_t updates);

  /// Zero flops, 8 bytes per update, and (unlike STREAM) no spatial
  /// locality: per-core achievable bandwidth is latency-limited, so the
  /// traits carry a much lower per-iteration DRAM efficiency.
  static hw::KernelTraits traits();

 private:
  std::vector<std::uint64_t> table_;
};

}  // namespace cci::kernels
