// The paper's tunable-arithmetic-intensity TRIAD (§4.5).
//
// A `cursor` repeats the multiply-add on each element before moving to the
// next one: few repetitions = memory-bound, many = CPU-bound.  Arithmetic
// intensity follows the roofline definition, flops per byte of data moved:
//
//   AI(cursor) = 2 * cursor / 24   [flop/B]
//
// so cursor 72 sits at the paper's henri boundary of 6 flop/B.
#pragma once

#include <cstddef>
#include <vector>

#include "hw/workload.hpp"

namespace cci::kernels {

class TunableTriad {
 public:
  TunableTriad(std::size_t n, int cursor, double scalar = 3.0);

  [[nodiscard]] int cursor() const { return cursor_; }
  [[nodiscard]] std::size_t size() const { return a_.size(); }

  /// Run one pass over the arrays; returns flops executed.
  std::size_t run();
  /// Verify against the closed form of `cursor` repeated updates.
  [[nodiscard]] bool verify() const;

  /// Flops per element-iteration (2 per repetition).
  [[nodiscard]] double flops_per_elem() const { return 2.0 * cursor_; }
  /// DRAM bytes per element-iteration (a, b read; c written).
  [[nodiscard]] double bytes_per_elem() const { return 24.0; }
  [[nodiscard]] double arithmetic_intensity() const {
    return flops_per_elem() / bytes_per_elem();
  }

  /// Simulator traits for this cursor value.
  [[nodiscard]] hw::KernelTraits traits() const;
  /// Cursor needed to reach a target arithmetic intensity (rounded up).
  static int cursor_for_intensity(double flops_per_byte);

 private:
  std::vector<double> a_, b_, c_;
  int cursor_;
  double scalar_;
};

}  // namespace cci::kernels
