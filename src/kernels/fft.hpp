// Iterative radix-2 complex FFT: a real transform kernel whose memory
// behaviour sits between STREAM and GEMM (log2(n) streaming passes).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "hw/workload.hpp"

namespace cci::kernels {

class Fft {
 public:
  using Complex = std::complex<double>;

  /// `n` must be a power of two.
  explicit Fft(std::size_t n);

  /// In-place forward transform of `data` (size n).
  void forward(std::vector<Complex>& data) const;
  /// In-place inverse transform (normalized).
  void inverse(std::vector<Complex>& data) const;

  /// Reference O(n^2) DFT for verification.
  static std::vector<Complex> dft_reference(const std::vector<Complex>& in);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Traits for one butterfly: 10 flops over ~32 streamed bytes when the
  /// transform exceeds the cache; working set = 16n bytes.
  static hw::KernelTraits traits(std::size_t n);
  /// Butterflies in one transform: (n/2) * log2(n).
  static double butterflies(std::size_t n);

 private:
  std::size_t n_;
  std::vector<std::size_t> bitrev_;
  std::vector<Complex> twiddles_;
};

}  // namespace cci::kernels
