#include "kernels/dense.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace cci::kernels {

void Matrix::randomize(std::uint64_t seed) {
  std::uint64_t x = seed ? seed : 1;
  for (double& v : data_) {
    // xorshift64*
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    std::uint64_t r = x * 0x2545F4914F6CDD1Dull;
    v = static_cast<double>(r >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  }
}

void Matrix::make_spd() {
  const std::size_t n = rows_;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      double s = 0.5 * (at(i, j) + at(j, i));
      at(i, j) = s;
      at(j, i) = s;
    }
  for (std::size_t i = 0; i < n; ++i) at(i, i) += static_cast<double>(n);
}

double Matrix::frobenius_distance(const Matrix& other) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    double d = data_[i] - other.data_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

void gemm_naive(const Matrix& a, const Matrix& b, Matrix& c) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t p = 0; p < k; ++p) {
      double aip = a.at(i, p);
      for (std::size_t j = 0; j < n; ++j) c.at(i, j) += aip * b.at(p, j);
    }
}

void gemm_blocked(const Matrix& a, const Matrix& b, Matrix& c, std::size_t block) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  const std::size_t bs = std::max<std::size_t>(1, block);
#pragma omp parallel for collapse(2) schedule(static)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(m); ii += static_cast<std::ptrdiff_t>(bs))
    for (std::ptrdiff_t jj = 0; jj < static_cast<std::ptrdiff_t>(n); jj += static_cast<std::ptrdiff_t>(bs))
      for (std::size_t pp = 0; pp < k; pp += bs) {
        const std::size_t i_end = std::min(static_cast<std::size_t>(ii) + bs, m);
        const std::size_t j_end = std::min(static_cast<std::size_t>(jj) + bs, n);
        const std::size_t p_end = std::min(pp + bs, k);
        for (std::size_t i = static_cast<std::size_t>(ii); i < i_end; ++i)
          for (std::size_t p = pp; p < p_end; ++p) {
            double aip = a.at(i, p);
            for (std::size_t j = static_cast<std::size_t>(jj); j < j_end; ++j)
              c.at(i, j) += aip * b.at(p, j);
          }
      }
}

void gemv(const Matrix& a, const std::vector<double>& x, std::vector<double>& y) {
  const std::size_t m = a.rows(), n = a.cols();
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(m); ++i) {
    double acc = 0.0;
    const auto row = static_cast<std::size_t>(i);
    for (std::size_t j = 0; j < n; ++j) acc += a.at(row, j) * x[j];
    y[row] = acc;
  }
}

double dot(const std::vector<double>& x, const std::vector<double>& y) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace cci::kernels
