// STREAM kernels (McCalpin [16]): COPY and TRIAD, as used in §4.
//
// These are real, runnable kernels (OpenMP-parallel when enabled).  The
// same code paths provide the per-iteration traits fed to the simulator,
// so the simulated memory pressure is derived from code that actually
// computes and is tested for correctness.
#pragma once

#include <cstddef>
#include <vector>

#include "hw/workload.hpp"

namespace cci::kernels {

/// Working set for the STREAM kernels; sized in elements (doubles).
class StreamArrays {
 public:
  explicit StreamArrays(std::size_t n, double scalar = 3.0);

  std::size_t size() const { return a_.size(); }
  double scalar() const { return scalar_; }

  /// b[i] <- a[i].  Returns bytes moved (STREAM counting: 16 per element).
  std::size_t copy();
  /// c[i] <- a[i] + scalar * b[i].  Returns bytes moved (24 per element).
  std::size_t triad();

  /// Verify the last triad result against the definition; true if exact.
  [[nodiscard]] bool verify_triad() const;
  [[nodiscard]] bool verify_copy() const;

  const std::vector<double>& a() const { return a_; }
  const std::vector<double>& b() const { return b_; }
  const std::vector<double>& c() const { return c_; }

 private:
  std::vector<double> a_, b_, c_;
  double scalar_;
};

/// Simulator traits.  STREAM counts COPY as 16 B/element (one read + one
/// write) and TRIAD as 24 B/element with 2 flops (multiply + add); with
/// write-allocate traffic real machines move a bit more, which the
/// calibrated controller capacities absorb.
hw::KernelTraits copy_traits();
hw::KernelTraits triad_traits();

}  // namespace cci::kernels
