#include "kernels/tunable_triad.hpp"

#include <cmath>

namespace cci::kernels {

TunableTriad::TunableTriad(std::size_t n, int cursor, double scalar)
    : a_(n), b_(n), c_(n), cursor_(cursor < 1 ? 1 : cursor), scalar_(scalar) {
  for (std::size_t i = 0; i < n; ++i) {
    a_[i] = 0.5 + static_cast<double>(i % 64) * 0.125;
    b_[i] = 1.0 / 1024.0;  // small so repeated accumulation stays exact
    c_[i] = 0.0;
  }
}

std::size_t TunableTriad::run() {
  const std::size_t n = a_.size();
  double* __restrict c = c_.data();
  const double* __restrict a = a_.data();
  const double* __restrict b = b_.data();
  const double s = scalar_;
  const int reps = cursor_;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    double acc = a[idx];
    // The cursor loop: the item stays in register while we burn flops on
    // it, exactly the paper's modification of STREAM TRIAD.
    for (int r = 0; r < reps; ++r) acc = acc + s * b[idx];
    c[idx] = acc;
  }
  return n * static_cast<std::size_t>(2 * cursor_);
}

bool TunableTriad::verify() const {
  for (std::size_t i = 0; i < a_.size(); ++i) {
    double want = a_[i] + static_cast<double>(cursor_) * scalar_ * b_[i];
    if (std::abs(c_[i] - want) > 1e-12 * (1.0 + std::abs(want))) return false;
  }
  return true;
}

hw::KernelTraits TunableTriad::traits() const {
  return hw::KernelTraits{"triad-cursor" + std::to_string(cursor_), flops_per_elem(),
                          bytes_per_elem(), hw::VectorClass::kSse};
}

int TunableTriad::cursor_for_intensity(double flops_per_byte) {
  return static_cast<int>(std::ceil(flops_per_byte * 24.0 / 2.0));
}

}  // namespace cci::kernels
