#include "kernels/access_patterns.hpp"

#include <algorithm>

namespace cci::kernels {

Transpose::Transpose(std::size_t n, std::size_t block)
    : n_(n), block_(std::max<std::size_t>(1, block)), a_(n * n), b_(n * n, 0.0) {
  for (std::size_t i = 0; i < n_ * n_; ++i)
    a_[i] = static_cast<double>(i % 8191) * 0.125;
}

std::size_t Transpose::run() {
#pragma omp parallel for collapse(2) schedule(static)
  for (std::ptrdiff_t ii = 0; ii < static_cast<std::ptrdiff_t>(n_);
       ii += static_cast<std::ptrdiff_t>(block_))
    for (std::ptrdiff_t jj = 0; jj < static_cast<std::ptrdiff_t>(n_);
         jj += static_cast<std::ptrdiff_t>(block_)) {
      const std::size_t i_end = std::min(static_cast<std::size_t>(ii) + block_, n_);
      const std::size_t j_end = std::min(static_cast<std::size_t>(jj) + block_, n_);
      for (std::size_t i = static_cast<std::size_t>(ii); i < i_end; ++i)
        for (std::size_t j = static_cast<std::size_t>(jj); j < j_end; ++j)
          b_[j * n_ + i] = a_[i * n_ + j];
    }
  return n_ * n_ * 16;
}

bool Transpose::verify() const {
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j < n_; ++j)
      if (b_[j * n_ + i] != a_[i * n_ + j]) return false;
  return true;
}

hw::KernelTraits Transpose::traits() {
  return hw::KernelTraits{"transpose", 0.0, 16.0, hw::VectorClass::kSse};
}

RandomAccess::RandomAccess(std::size_t table_words) : table_(table_words) {
  for (std::size_t i = 0; i < table_.size(); ++i) table_[i] = i;
}

std::uint64_t RandomAccess::run(std::size_t updates) {
  const std::size_t mask = table_.size() - 1;  // callers pass powers of two
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  std::uint64_t checksum = 0;
  for (std::size_t u = 0; u < updates; ++u) {
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
    table_[h & mask] ^= h;
    checksum += h;
  }
  return checksum;
}

bool RandomAccess::verify_involution(std::size_t updates) {
  std::vector<std::uint64_t> snapshot = table_;
  run(updates);
  run(updates);  // identical stream: xor cancels every update
  return table_ == snapshot;
}

hw::KernelTraits RandomAccess::traits() {
  // 8 B payload per update but a full cache line moves, and the dependent
  // pointer chase cannot pipeline: charge the line (64 B) per iteration to
  // reflect the wasted bus traffic of random access.
  return hw::KernelTraits{"gups", 0.0, 64.0, hw::VectorClass::kScalar};
}

}  // namespace cci::kernels
