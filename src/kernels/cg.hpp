// Conjugate gradient (§6): the paper's memory-bound use-case kernel.
//
// Dense CG (GEMV-dominated, arithmetic intensity ~0.25 flop/B) plus a CSR
// sparse variant for coverage.  Both are real solvers, tested against
// residual reduction; the traits below feed the simulated task versions.
#pragma once

#include <cstddef>
#include <vector>

#include "hw/workload.hpp"
#include "kernels/dense.hpp"

namespace cci::kernels {

struct CgResult {
  int iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

/// Solve A x = b for SPD dense A.  `x` is in/out (initial guess).
CgResult cg_solve(const Matrix& a, const std::vector<double>& b, std::vector<double>& x,
                  double tol = 1e-9, int max_iter = 1000);

/// Compressed sparse row matrix.
struct CsrMatrix {
  std::size_t n = 0;
  std::vector<std::size_t> row_ptr;
  std::vector<std::size_t> col;
  std::vector<double> val;

  /// 2D 5-point Laplacian on a grid of `side` x `side` points (SPD).
  static CsrMatrix laplacian2d(std::size_t side);
  void spmv(const std::vector<double>& x, std::vector<double>& y) const;
};

CgResult cg_solve_csr(const CsrMatrix& a, const std::vector<double>& b, std::vector<double>& x,
                      double tol = 1e-9, int max_iter = 2000);

/// Traits of the dominant CG operation (dense GEMV row sweep): 2 flops per
/// matrix element streamed at 8 bytes -> AI = 0.25 flop/B.
hw::KernelTraits cg_gemv_traits();

/// Same, with the working set sized for an n x n dense system so that
/// small problems become LLC-resident (KernelTraits::dram_fraction).
hw::KernelTraits cg_gemv_traits_for(std::size_t n);

/// Traits of one cache-blocked GEMM tile pass: for a b x b x b tile
/// multiply, 2b^3 flops over ~3 * 8 b^2 bytes of DRAM traffic -> AI = b/12.
hw::KernelTraits gemm_tile_traits(std::size_t tile);

}  // namespace cci::kernels
