// Naive prime counting (§3.2): the paper's purely CPU-bound kernel.
//
// "counts in a very naive way the number of prime numbers in an interval
// ... uses only few integer variables" — zero memory pressure, pure
// integer/branch work, used to drive DVFS without touching the bus.
#pragma once

#include <cstdint>

#include "hw/workload.hpp"

namespace cci::kernels {

/// True iff `n` is prime, by trial division (deliberately naive).
bool is_prime_naive(std::uint64_t n);

/// Count primes in [lo, hi).
std::uint64_t count_primes(std::uint64_t lo, std::uint64_t hi);

/// Cost of count_primes in "iterations" for the simulator: total trial
/// divisions performed (the inner-loop unit).
double prime_trial_divisions(std::uint64_t lo, std::uint64_t hi);

/// Simulator traits: one trial division per iteration, ~4 cycles of
/// integer work, no memory traffic.
hw::KernelTraits prime_traits();

}  // namespace cci::kernels
