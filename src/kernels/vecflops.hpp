// Wide-vector FMA burn kernel (§3.3): cache-resident AVX512-class work.
//
// Each computing core runs the same amount of FMA work on a tiny buffer
// (weak scaling, as in the paper), forcing the AVX512 turbo licence
// without generating DRAM traffic.
#pragma once

#include <array>
#include <cstddef>

#include "hw/workload.hpp"

namespace cci::kernels {

class VecFlops {
 public:
  VecFlops();

  /// Execute `fma_ops` fused multiply-adds over the resident buffer;
  /// returns the accumulated checksum (prevents dead-code elimination).
  double run(std::size_t fma_ops);

  /// Simulator traits: iteration = one 8-wide FMA; 16 flops, no memory.
  static hw::KernelTraits traits();
  /// Iterations for a given flop budget.
  static double iterations_for_flops(double flops) { return flops / 16.0; }

 private:
  static constexpr std::size_t kLanes = 8;  // one ZMM register of doubles
  std::array<double, kLanes> x_;
  std::array<double, kLanes> y_;
};

}  // namespace cci::kernels
