#include "kernels/fft.hpp"

#include <cassert>
#include <cmath>

namespace cci::kernels {

namespace {
constexpr double kTwoPi = 6.283185307179586476925287;

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

int log2_of(std::size_t n) {
  int k = 0;
  while ((std::size_t{1} << k) < n) ++k;
  return k;
}
}  // namespace

Fft::Fft(std::size_t n) : n_(n), bitrev_(n), twiddles_(n / 2) {
  assert(is_pow2(n) && "FFT size must be a power of two");
  (void)&is_pow2;  // assert-only in release builds
  const int bits = log2_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (int b = 0; b < bits; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    bitrev_[i] = r;
  }
  for (std::size_t k = 0; k < n / 2; ++k) {
    double ang = -kTwoPi * static_cast<double>(k) / static_cast<double>(n);
    twiddles_[k] = Complex(std::cos(ang), std::sin(ang));
  }
}

void Fft::forward(std::vector<Complex>& data) const {
  assert(data.size() == n_);
  for (std::size_t i = 0; i < n_; ++i)
    if (bitrev_[i] > i) std::swap(data[i], data[bitrev_[i]]);
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    const std::size_t stride = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        Complex w = twiddles_[k * stride];
        Complex u = data[start + k];
        Complex v = data[start + k + half] * w;
        data[start + k] = u + v;
        data[start + k + half] = u - v;
      }
    }
  }
}

void Fft::inverse(std::vector<Complex>& data) const {
  for (auto& x : data) x = std::conj(x);
  forward(data);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (auto& x : data) x = std::conj(x) * inv_n;
}

std::vector<Fft::Complex> Fft::dft_reference(const std::vector<Complex>& in) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      double ang = -kTwoPi * static_cast<double>(k * j % n) / static_cast<double>(n);
      acc += in[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

hw::KernelTraits Fft::traits(std::size_t n) {
  hw::KernelTraits t{"fft" + std::to_string(n), 10.0, 32.0, hw::VectorClass::kSse};
  t.working_set_bytes = 16.0 * static_cast<double>(n);
  return t;
}

double Fft::butterflies(std::size_t n) {
  return 0.5 * static_cast<double>(n) * log2_of(n);
}

}  // namespace cci::kernels
