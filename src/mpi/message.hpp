// Message descriptors and requests for the mini-MPI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "sim/sync.hpp"

namespace cci::mpi {

/// Wildcards, MPI-style.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Describes a message buffer: we simulate placement and identity, not
/// contents.  `data_numa` drives NUMA paths; `buffer_id` feeds the
/// registration cache (0 = anonymous, treated as already registered —
/// ping-pong benchmarks recycle buffers, §2.1).
struct MsgView {
  std::size_t bytes = 0;
  int data_numa = 0;
  std::uint64_t buffer_id = 0;
};

/// Operation outcome.  Everything is kOk on the healthy path; the reliable
/// transport surfaces bounded-retry failures instead of hanging.
enum class MpiStatus {
  kOk = 0,
  kTimedOut,   ///< retry budget exhausted without an acknowledged delivery
  kCorrupted,  ///< budget exhausted and the last failure was a CRC mismatch
  kCancelled,  ///< aborted by runtime failover (owner rank/worker died)
};

/// Completion handle for a nonblocking operation; `co_await *req` waits.
/// Always check `status()` after a wait when faults may be armed: a request
/// completes (event set) on failure too, carrying the error here.
class Request {
 public:
  explicit Request(sim::Engine& engine) : done_(engine) {}
  sim::OneShotEvent& done() { return done_; }
  [[nodiscard]] bool test() const { return done_.is_set(); }
  [[nodiscard]] MpiStatus status() const { return status_; }
  [[nodiscard]] bool ok() const { return status_ == MpiStatus::kOk; }
  /// Complete with an error (idempotent; the first completion wins).
  void fail(MpiStatus status) {
    if (done_.is_set()) return;
    status_ = status;
    done_.set();
  }
  auto operator co_await() { return done_.wait(); }

 private:
  sim::OneShotEvent done_;
  MpiStatus status_ = MpiStatus::kOk;
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace cci::mpi
