// Message descriptors and requests for the mini-MPI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "sim/sync.hpp"

namespace cci::mpi {

/// Wildcards, MPI-style.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Describes a message buffer: we simulate placement and identity, not
/// contents.  `data_numa` drives NUMA paths; `buffer_id` feeds the
/// registration cache (0 = anonymous, treated as already registered —
/// ping-pong benchmarks recycle buffers, §2.1).
struct MsgView {
  std::size_t bytes = 0;
  int data_numa = 0;
  std::uint64_t buffer_id = 0;
};

/// Completion handle for a nonblocking operation; `co_await *req` waits.
class Request {
 public:
  explicit Request(sim::Engine& engine) : done_(engine) {}
  sim::OneShotEvent& done() { return done_; }
  [[nodiscard]] bool test() const { return done_.is_set(); }
  auto operator co_await() { return done_.wait(); }

 private:
  sim::OneShotEvent done_;
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace cci::mpi
