// Ping-pong benchmark: NetPIPE metrics over the mini-MPI (§2.1).
//
// Latency = half round-trip (MPI_Send begin to MPI_Recv end); bandwidth =
// bytes / latency.  Buffers are recycled (constant buffer_id) to benefit
// from the registration cache, exactly as in the paper.
#pragma once

#include <cstddef>
#include <vector>

#include "mpi/world.hpp"

namespace cci::mpi {

struct PingPongOptions {
  std::size_t bytes = 4;
  int iterations = 30;
  int warmup = 3;
  int tag = 99;
  /// NUMA node of the send/recv buffers on each side.
  int data_numa_a = 0;
  int data_numa_b = 0;
  /// Run until request_stop() instead of a fixed iteration count (used for
  /// side-by-side phases where the computation decides the duration).
  bool continuous = false;
};

class PingPong {
 public:
  PingPong(World& world, int rank_a, int rank_b, PingPongOptions options);

  /// Spawn both sides; complete() is set when rank A's loop finishes.
  void start();
  sim::OneShotEvent& complete() { return *complete_; }
  /// In continuous mode: finish the current iteration, then stop.
  void request_stop() { stop_ = true; }

  /// Per-iteration half-RTT latencies (seconds), warmup excluded.
  [[nodiscard]] const std::vector<double>& latencies() const { return latencies_; }
  /// Per-iteration bandwidths (B/s).
  [[nodiscard]] std::vector<double> bandwidths() const;

 private:
  sim::Coro side_a();
  sim::Coro side_b();

  World& world_;
  int rank_a_;
  int rank_b_;
  PingPongOptions opt_;
  bool stop_ = false;
  std::vector<double> latencies_;
  std::unique_ptr<sim::OneShotEvent> complete_;
};

}  // namespace cci::mpi
