// LogGP parameter extraction from ping-pong measurements.
//
// The paper explains its frequency findings through the o (overhead) term
// of the LogP model [6].  This utility fits the LogGP parameters from a
// message-size sweep of ping-pong latencies:
//
//   t(s) = L + 2o + (s - 1) * G      (one-way, s bytes)
//
// where L+2o comes from the zero-size intercept and G (per-byte gap) from
// the asymptotic slope.  o alone is separated by running the sweep at two
// comm-core frequencies: o scales as 1/f while L and G do not.
#pragma once

#include <cstddef>
#include <vector>

#include "mpi/world.hpp"

namespace cci::mpi {

struct LogGPParams {
  double latency = 0.0;       ///< L: wire + fixed hardware path (s)
  double overhead = 0.0;      ///< o: per-message CPU cost at the probed frequency (s)
  double gap_per_byte = 0.0;  ///< G: s/byte for large messages
  double fit_residual = 0.0;  ///< RMS of the linear fit on the large sizes
};

/// Measure one-way times for `sizes` between ranks 0 and 1 (median of
/// `iterations` ping-pongs each).
std::vector<double> measure_one_way_times(World& world, const std::vector<std::size_t>& sizes,
                                          int iterations = 15, int tag_base = 40000);

/// Fit LogGP from (size, time) pairs: G from a least-squares line over the
/// rendezvous sizes, L+2o from the smallest size.  `overhead_fraction`
/// apportions the intercept between L and 2o (calibrate via a frequency
/// sweep; see fit_loggp_two_frequencies).
LogGPParams fit_loggp(const std::vector<std::size_t>& sizes, const std::vector<double>& times,
                      double overhead_fraction = 0.5);

/// Separate o from L by measuring at two pinned core frequencies: the
/// frequency-dependent part of the intercept is 2o.
LogGPParams fit_loggp_two_frequencies(net::Cluster& cluster, double f_lo, double f_hi,
                                      int comm_core = -1);

}  // namespace cci::mpi
