// Mini-MPI: point-to-point messaging over the simulated cluster.
//
// One World spans the cluster; each rank is a process pinned to one node
// with a dedicated communication core (the paper's communication thread,
// §2.1).  Two protocols, as in MadMPI/NewMadeleine:
//
//  * eager (size <= eager_threshold): the comm core copies the payload to
//    the NIC (PIO).  Small messages (< pio_latency_cutoff) are a chain of
//    dependent transactions whose cost inflates with memory-system demand
//    pressure — this is where computation hurts *latency*.  Larger eager
//    messages are a CPU-rate-capped copy flow that also consumes memory
//    bandwidth.
//  * rendezvous (above threshold): RTS/CTS handshake, then a zero-copy DMA
//    flow crossing [src memory path, src DMA engine, wire, dst DMA engine,
//    dst memory path] — this is where computation hurts *bandwidth* and
//    vice versa.
//
// Software overheads are charged in comm-core cycles (LogP's o), so pinned
// or DVFS-driven core frequencies move latency exactly as §3 observes.
//
// Reliability: when the cluster's FaultState is armed (loss/corruption
// windows, NIC blackouts, or force_reliable), both protocols switch to an
// acknowledged transport — CRC verification at the receiver, per-message
// retransmit timers with LogGP-derived initial RTO and exponential backoff,
// a bounded retry budget surfacing MpiStatus::kTimedOut/kCorrupted instead
// of hanging, and cancellation of in-flight DMA flows when a NIC blacks
// out.  With the fault model unarmed, the legacy fire-and-forget path runs
// verbatim (bitwise-identical event stream, no extra RNG draws).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "mpi/message.hpp"
#include "net/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/coro.hpp"

namespace cci::mpi {

struct RankConfig {
  int node = 0;
  /// Core running the communication thread; -1 = last core of the node.
  int comm_core = -1;
};

class World {
 public:
  World(net::Cluster& cluster, std::vector<RankConfig> ranks);

  [[nodiscard]] int size() const { return static_cast<int>(ranks_.size()); }
  net::Cluster& cluster() { return cluster_; }
  sim::Engine& engine() { return cluster_.engine(); }
  hw::Machine& machine_of(int rank) { return cluster_.machine(cfg(rank).node); }
  net::Nic& nic_of(int rank) { return cluster_.nic(cfg(rank).node); }
  [[nodiscard]] int comm_core(int rank) const;
  [[nodiscard]] int comm_numa(int rank) const;

  /// Post a nonblocking send from `src_rank` to `dst_rank`.
  RequestPtr isend(int src_rank, int dst_rank, int tag, MsgView msg);
  /// Post a nonblocking receive on `rank` (src/tag may be wildcards).
  RequestPtr irecv(int rank, int src_rank, int tag, MsgView msg);

  /// Extra per-operation progress delay on a rank's comm thread; the
  /// task-runtime layer uses this to model lock contention from polling
  /// workers (§5.4) and its own software stack (§5.2).
  void set_progress_overhead(int rank, double seconds) {
    ranks_.at(static_cast<std::size_t>(rank)).progress_overhead = seconds;
  }
  [[nodiscard]] double progress_overhead(int rank) const {
    return ranks_.at(static_cast<std::size_t>(rank)).progress_overhead;
  }

  /// Sending-side bandwidth accounting (Fig. 10: "network bandwidth as
  /// perceived by the sending node").
  struct SendStats {
    double bytes = 0.0;
    double busy_time = 0.0;  ///< sum over sends of (local completion - post)
    [[nodiscard]] double sending_bw() const { return busy_time > 0 ? bytes / busy_time : 0.0; }
  };
  [[nodiscard]] const SendStats& send_stats(int rank) const {
    return ranks_.at(static_cast<std::size_t>(rank)).stats;
  }
  void reset_send_stats() {
    for (auto& r : ranks_) r.stats = {};
  }

  /// Per-message network trace (off by default): protocol decisions and
  /// transfer windows, for debugging benches and for trace export.
  struct MessageRecord {
    int src = 0;
    int dst = 0;
    int tag = 0;
    std::size_t bytes = 0;
    bool eager = true;
    double post_time = 0.0;       ///< isend call
    double transfer_start = 0.0;  ///< payload starts moving (DMA for rndv)
    double complete_time = 0.0;   ///< sender-side completion
  };
  void enable_message_trace(bool on) { message_trace_enabled_ = on; }
  [[nodiscard]] const std::vector<MessageRecord>& message_trace() const {
    return message_trace_;
  }

 private:
  /// A message that reached the matching point at the receiver: an eager
  /// payload after the wire, or a rendezvous RTS.  A non-kOk status marks a
  /// "poison" arrival: the sender gave up before delivering, and the
  /// matching receive must fail instead of waiting forever.
  struct Arrival {
    int src = 0;
    int tag = 0;
    std::size_t bytes = 0;
    bool eager = true;
    MpiStatus status = MpiStatus::kOk;
    std::unique_ptr<sim::OneShotEvent> matched;  // set when a recv matches
    MsgView recv_msg;                            // filled at match time
    RequestPtr recv_req;
  };
  using ArrivalPtr = std::shared_ptr<Arrival>;

  struct PostedRecv {
    int src;
    int tag;
    MsgView msg;
    RequestPtr req;
  };

  struct RankState {
    RankConfig config;
    double progress_overhead = 0.0;
    SendStats stats;
    std::deque<PostedRecv> posted;
    std::deque<ArrivalPtr> unexpected;
  };

  RankState& rank(int r) { return ranks_.at(static_cast<std::size_t>(r)); }
  [[nodiscard]] const RankConfig& cfg(int r) const {
    return ranks_.at(static_cast<std::size_t>(r)).config;
  }

  /// Comm-core software delay for `cycles` of work on `rank`, with noise
  /// and the rank's progress overhead applied.
  double sw_delay(int rank, double cycles);
  /// One-way small-control-message latency (RTS/CTS).
  double control_delay();
  /// PIO path latency for `bytes` on the sender (dependent transactions).
  double pio_latency(int rank, std::size_t bytes);

  /// Match an arrival against posted receives (or park it).
  void arrive(int dst_rank, const ArrivalPtr& arrival);
  /// Complete the receiver side of a matched eager message.
  sim::Coro finish_eager_recv(int dst_rank, ArrivalPtr arrival, bool from_unexpected);

  sim::Coro send_process(int src_rank, int dst_rank, int tag, MsgView msg, RequestPtr sreq);

  // ---- reliable transport (active only when the fault model is armed) ------
  [[nodiscard]] bool reliable() const;
  /// LogGP-derived initial retransmission timeout for a payload of `bytes`:
  /// safety x (data serialization + round-trip wire and control latency).
  [[nodiscard]] double initial_rto(std::size_t bytes) const;
  /// Receiver-side CRC verification delay, charged per delivered payload.
  [[nodiscard]] double crc_delay(int rank, std::size_t bytes);
  /// Reliable-path replacements for the two protocol branches.
  sim::Coro reliable_eager_send(int src_rank, int dst_rank, int tag, MsgView msg,
                                RequestPtr sreq, ArrivalPtr arrival, sim::Time t0);
  sim::Coro reliable_rndv_send(int src_rank, int dst_rank, int tag, MsgView msg,
                               RequestPtr sreq, ArrivalPtr arrival, sim::Time t0);
  /// Give up on a rendezvous: fail the sender and poison/fail the receiver.
  void fail_rndv(int dst_rank, const ArrivalPtr& arrival, const RequestPtr& sreq,
                 MpiStatus status, bool rts_delivered);
  /// Deliver a small control message (RTS/CTS-class) with per-attempt loss
  /// draws and link-level acks; spawns `on_delivery` once on the first
  /// successful transmission.  Returns true when acknowledged in budget.
  /// (Implemented inline in the callers; declaration kept for symmetry.)

  /// In-flight rendezvous DMA registry: NIC blackouts cancel the flows of
  /// every transfer touching the dead node and wake their senders.
  struct InflightDma {
    sim::ActivityPtr act;
    sim::OneShotEvent* abort;
    int src_node;
    int dst_node;
  };
  void register_dma(sim::ActivityPtr act, sim::OneShotEvent* abort, int src_node, int dst_node);
  void unregister_dma(const sim::OneShotEvent* abort);

  net::Cluster& cluster_;
  net::FaultState* faults_ = nullptr;
  std::vector<RankState> ranks_;
  std::vector<InflightDma> inflight_dma_;
  bool message_trace_enabled_ = false;
  std::vector<MessageRecord> message_trace_;

  // Observability: per-message lifecycle spans land on one tracer track per
  // rank; counters/histograms live in the global registry.
  obs::Registry* obs_reg_ = nullptr;
  obs::Counter* obs_eager_ = nullptr;
  obs::Counter* obs_rndv_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Histogram* obs_posted_depth_ = nullptr;
  obs::Histogram* obs_unexpected_depth_ = nullptr;
  obs::Histogram* obs_dma_rate_ = nullptr;
  obs::Counter* obs_retransmits_ = nullptr;
  obs::Counter* obs_timeouts_ = nullptr;
  std::vector<obs::TrackId> obs_rank_tracks_;
  // Transfer labels interned once at construction; specs carry the 4-byte id.
  sim::LabelId label_pio_copy_ = sim::kNoLabel;
  sim::LabelId label_dma_ = sim::kNoLabel;
};

}  // namespace cci::mpi
