#include "mpi/world.hpp"

#include <cassert>
#include <cmath>

#include "hw/frequency_governor.hpp"

namespace cci::mpi {

namespace {
bool matches(int want_src, int want_tag, int src, int tag) {
  return (want_src == kAnySource || want_src == src) && (want_tag == kAnyTag || want_tag == tag);
}
}  // namespace

World::World(net::Cluster& cluster, std::vector<RankConfig> ranks) : cluster_(cluster) {
  ranks_.reserve(ranks.size());
  for (const RankConfig& rc : ranks) {
    RankState state;
    state.config = rc;
    if (state.config.comm_core < 0)
      state.config.comm_core = cluster_.machine(rc.node).config().total_cores() - 1;
    ranks_.push_back(std::move(state));
  }
  // The communication thread busy-polls for progression: its core is
  // permanently active at the stable comm frequency.
  for (int r = 0; r < size(); ++r)
    machine_of(r).governor().core_comm(comm_core(r));

  obs_reg_ = &obs::Registry::global();
  obs_eager_ = &obs_reg_->counter("mpi.world.eager_msgs");
  obs_rndv_ = &obs_reg_->counter("mpi.world.rndv_msgs");
  obs_bytes_ = &obs_reg_->counter("mpi.world.bytes_sent");
  obs_posted_depth_ = &obs_reg_->histogram("mpi.world.posted_depth");
  obs_unexpected_depth_ = &obs_reg_->histogram("mpi.world.unexpected_depth");
  obs_dma_rate_ = &obs_reg_->histogram("mpi.world.dma_rate_Bps");
  obs_rank_tracks_.reserve(ranks_.size());
  for (int r = 0; r < size(); ++r)
    obs_rank_tracks_.push_back(obs_reg_->tracer().track("mpi.rank" + std::to_string(r)));
}

int World::comm_core(int rank) const { return cfg(rank).comm_core; }

int World::comm_numa(int rank) const {
  const RankConfig& c = cfg(rank);
  return cluster_.machine(c.node).config().numa_of_core(c.comm_core);
}

double World::sw_delay(int rank, double cycles) {
  double f = machine_of(rank).governor().core_freq(comm_core(rank));
  const auto& np = nic_of(rank).params();
  return cycles / f * cluster_.rng().jitter(np.noise_rel) +
         ranks_[static_cast<std::size_t>(rank)].progress_overhead;
}

double World::control_delay() {
  const auto& np = cluster_.net();
  return np.control_latency * cluster_.rng().jitter(np.noise_rel);
}

double World::pio_latency(int rank, std::size_t bytes) {
  hw::Machine& m = machine_of(rank);
  net::Nic& nic = nic_of(rank);
  const auto& np = nic.params();
  const auto& cfg_m = m.config();

  sim::Resource* nic_ctrl = m.mem_ctrl(nic.numa());
  // Doorbell/PIO processing contends with the NIC-socket memory system only
  // when issued from that socket (same CHA-ingress argument as in
  // Machine::mem_access_latency); a far comm thread pays on the socket link.
  const bool comm_on_nic_socket = cfg_m.socket_of_core(comm_core(rank)) == nic.socket();
  double t = np.pio_base_latency * (comm_on_nic_socket ? m.inflation(nic_ctrl) : 1.0) *
             m.uncore_latency_scale(nic.socket());
  double f = m.governor().core_freq(comm_core(rank));
  double chunks = std::ceil(static_cast<double>(bytes) / static_cast<double>(np.pio_chunk));
  t += chunks * static_cast<double>(np.pio_chunk) * np.pio_cycles_per_byte / f;
  if (cfg_m.socket_of_core(comm_core(rank)) != nic.socket())
    t += np.pio_socket_crossings * m.cross_socket_hop_latency();
  return t;
}

RequestPtr World::isend(int src_rank, int dst_rank, int tag, MsgView msg) {
  auto req = std::make_shared<Request>(engine());
  engine().spawn(send_process(src_rank, dst_rank, tag, msg, req));
  return req;
}

RequestPtr World::irecv(int rank_id, int src_rank, int tag, MsgView msg) {
  auto req = std::make_shared<Request>(engine());
  RankState& R = rank(rank_id);
  // Tag-matching pressure at post time (perf-counter view of the MPI queues).
  obs_posted_depth_->record(static_cast<double>(R.posted.size()));
  obs_unexpected_depth_->record(static_cast<double>(R.unexpected.size()));
  // Try the unexpected queue first, in arrival order.
  for (auto it = R.unexpected.begin(); it != R.unexpected.end(); ++it) {
    if (!matches(src_rank, tag, (*it)->src, (*it)->tag)) continue;
    ArrivalPtr arr = *it;
    R.unexpected.erase(it);
    arr->recv_msg = msg;
    arr->recv_req = req;
    arr->matched->set();
    if (arr->eager) engine().spawn(finish_eager_recv(rank_id, arr, /*from_unexpected=*/true));
    return req;
  }
  R.posted.push_back(PostedRecv{src_rank, tag, msg, req});
  return req;
}

void World::arrive(int dst_rank, const ArrivalPtr& arrival) {
  RankState& R = rank(dst_rank);
  for (auto it = R.posted.begin(); it != R.posted.end(); ++it) {
    if (!matches(it->src, it->tag, arrival->src, arrival->tag)) continue;
    arrival->recv_msg = it->msg;
    arrival->recv_req = it->req;
    R.posted.erase(it);
    arrival->matched->set();
    if (arrival->eager)
      engine().spawn(finish_eager_recv(dst_rank, arrival, /*from_unexpected=*/false));
    return;
  }
  R.unexpected.push_back(arrival);
  obs_unexpected_depth_->record(static_cast<double>(R.unexpected.size()));
}

sim::Coro World::finish_eager_recv(int dst_rank, ArrivalPtr arrival, bool from_unexpected) {
  const auto& np = nic_of(dst_rank).params();
  hw::Machine& m = machine_of(dst_rank);
  const sim::Time recv_t0 = engine().now();
  double t = sw_delay(dst_rank, np.recv_overhead_cycles);
  // Messages past the latency cutoff land in the user buffer through DRAM;
  // tiny payloads arrive with the completion and stay in cache.
  if (arrival->bytes > np.pio_latency_cutoff)
    t += m.mem_access_latency(comm_numa(dst_rank), arrival->recv_msg.data_numa);
  if (from_unexpected) {
    // The payload was parked in a bounce buffer near the NIC; the comm
    // core copies it out.
    double f = m.governor().core_freq(comm_core(dst_rank));
    t += static_cast<double>(arrival->bytes) * np.pio_cycles_per_byte / f;
  }
  co_await engine().sleep(t);
  obs::Tracer& tracer = obs_reg_->tracer();
  if (tracer.on())
    tracer.span(obs_rank_tracks_[static_cast<std::size_t>(dst_rank)],
                (from_unexpected ? "eager-recv (unexpected) tag=" : "eager-recv tag=") +
                    std::to_string(arrival->tag),
                recv_t0, engine().now());
  arrival->recv_req->done().set();
}

sim::Coro World::send_process(int src_rank, int dst_rank, int tag, MsgView msg,
                              RequestPtr sreq) {
  RankState& S = rank(src_rank);
  hw::Machine& M = machine_of(src_rank);
  net::Nic& snic = nic_of(src_rank);
  const auto& np = snic.params();
  const sim::Time t0 = engine().now();

  co_await engine().sleep(sw_delay(src_rank, np.send_overhead_cycles));

  auto arrival = std::make_shared<Arrival>();
  arrival->src = src_rank;
  arrival->tag = tag;
  arrival->bytes = msg.bytes;
  arrival->matched = std::make_unique<sim::OneShotEvent>(engine());

  if (msg.bytes <= np.eager_threshold) {
    arrival->eager = true;
    // Gather the payload from its NUMA node into the store pipeline.
    co_await engine().sleep(M.mem_access_latency(comm_numa(src_rank), msg.data_numa) *
                            cluster_.rng().jitter(np.noise_rel));
    if (msg.bytes <= np.pio_latency_cutoff) {
      co_await engine().sleep(pio_latency(src_rank, msg.bytes));
    } else {
      // CPU-driven pipelined copy: consumes memory bandwidth on the data
      // path and PCIe on the way out, capped by the core's copy speed.
      sim::ActivitySpec copy;
      copy.label = "pio-copy";
      copy.work = static_cast<double>(msg.bytes);
      for (sim::Resource* r : M.mem_path(comm_numa(src_rank), msg.data_numa))
        copy.demands.push_back({r, 1.0});
      copy.demands.push_back({snic.dma_engine(), 1.0});
      double f = M.governor().core_freq(comm_core(src_rank));
      copy.rate_cap = f / np.pio_cycles_per_byte;
      co_await *M.model().start(copy);
      co_await engine().sleep(pio_latency(src_rank, np.pio_chunk));  // doorbell
    }
    // Local completion: buffer reusable once handed to the NIC.
    S.stats.bytes += static_cast<double>(msg.bytes);
    S.stats.busy_time += engine().now() - t0;
    obs_eager_->add(1);
    obs_bytes_->add(static_cast<double>(msg.bytes));
    if (obs_reg_->tracer().on())
      obs_reg_->tracer().span(obs_rank_tracks_[static_cast<std::size_t>(src_rank)],
                              "eager tag=" + std::to_string(tag) + " B=" +
                                  std::to_string(msg.bytes),
                              t0, engine().now());
    if (message_trace_enabled_)
      message_trace_.push_back(
          {src_rank, dst_rank, tag, msg.bytes, true, t0, t0, engine().now()});
    sreq->done().set();

    double wire_time = np.wire_latency * cluster_.rng().jitter(np.noise_rel) +
                       static_cast<double>(msg.bytes) / np.wire_bw;
    engine().spawn([](World* w, int dst, ArrivalPtr arr, double t) -> sim::Coro {
      co_await w->engine().sleep(t);
      w->arrive(dst, arr);
    }(this, dst_rank, arrival, wire_time));
    co_return;
  }

  // ---- rendezvous ---------------------------------------------------------
  arrival->eager = false;
  const sim::Time hs_start = engine().now();
  co_await engine().sleep(control_delay());  // RTS travels to the receiver
  arrive(dst_rank, arrival);
  co_await arrival->matched->wait();         // receiver posted a matching recv
  co_await engine().sleep(control_delay());  // CTS travels back
  const sim::Time hs_end = engine().now();

  net::Nic& dnic = nic_of(dst_rank);
  if (msg.buffer_id != 0 && !snic.registered(msg.buffer_id)) {
    co_await engine().sleep(snic.registration_cost(msg.bytes));
    snic.register_buffer(msg.buffer_id);
  }
  if (arrival->recv_msg.buffer_id != 0 && !dnic.registered(arrival->recv_msg.buffer_id)) {
    co_await engine().sleep(dnic.registration_cost(arrival->recv_msg.bytes));
    dnic.register_buffer(arrival->recv_msg.buffer_id);
  }
  snic.refresh_dma_capacity();
  dnic.refresh_dma_capacity();

  // §6 sending-bandwidth metric: "time spent to send data over the
  // network" — the wire/DMA phase, not the wait for the receiver to show
  // up (which is application-dependent and constant across worker counts).
  const sim::Time transfer_start = engine().now();

  hw::Machine& D = machine_of(dst_rank);
  sim::ActivitySpec dma;
  dma.label = "dma";
  dma.work = static_cast<double>(msg.bytes);
  dma.weight = M.config().nic_dma_weight;
  for (sim::Resource* r : M.mem_path(snic.numa(), msg.data_numa)) dma.demands.push_back({r, 1.0});
  dma.demands.push_back({snic.dma_engine(), 1.0});
  for (sim::Resource* r : cluster_.fabric_path(cfg(src_rank).node, cfg(dst_rank).node))
    dma.demands.push_back({r, 1.0});
  dma.demands.push_back({dnic.dma_engine(), 1.0});
  for (sim::Resource* r : D.mem_path(dnic.numa(), arrival->recv_msg.data_numa))
    dma.demands.push_back({r, 1.0});
  co_await *M.model().start(dma);

  S.stats.bytes += static_cast<double>(msg.bytes);
  S.stats.busy_time += engine().now() - transfer_start;
  obs_rndv_->add(1);
  obs_bytes_->add(static_cast<double>(msg.bytes));
  if (engine().now() > transfer_start)
    obs_dma_rate_->record(static_cast<double>(msg.bytes) / (engine().now() - transfer_start));
  if (obs_reg_->tracer().on()) {
    // Per-message lifecycle: the whole rendezvous, with the RTS/CTS
    // handshake and the DMA window nested inside (lane spill in the
    // exporter keeps concurrent messages legible).
    obs::Tracer& tracer = obs_reg_->tracer();
    obs::TrackId track = obs_rank_tracks_[static_cast<std::size_t>(src_rank)];
    std::string id = " tag=" + std::to_string(tag) + " B=" + std::to_string(msg.bytes);
    tracer.span(track, "rndv" + id, t0, engine().now());
    tracer.span(track, "handshake" + id, hs_start, hs_end);
    tracer.span(track, "dma" + id, transfer_start, engine().now());
  }
  if (message_trace_enabled_)
    message_trace_.push_back(
        {src_rank, dst_rank, tag, msg.bytes, false, t0, transfer_start, engine().now()});
  sreq->done().set();

  co_await engine().sleep(sw_delay(dst_rank, np.recv_overhead_cycles));
  arrival->recv_req->done().set();
}

}  // namespace cci::mpi
