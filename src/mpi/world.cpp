#include "mpi/world.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "hw/frequency_governor.hpp"
#include "net/faults.hpp"
#include "sim/sync.hpp"

namespace cci::mpi {

namespace {
bool matches(int want_src, int want_tag, int src, int tag) {
  return (want_src == kAnySource || want_src == src) && (want_tag == kAnyTag || want_tag == tag);
}
}  // namespace

World::World(net::Cluster& cluster, std::vector<RankConfig> ranks) : cluster_(cluster) {
  ranks_.reserve(ranks.size());
  for (const RankConfig& rc : ranks) {
    RankState state;
    state.config = rc;
    if (state.config.comm_core < 0)
      state.config.comm_core = cluster_.machine(rc.node).config().total_cores() - 1;
    ranks_.push_back(std::move(state));
  }
  // The communication thread busy-polls for progression: its core is
  // permanently active at the stable comm frequency.
  for (int r = 0; r < size(); ++r)
    machine_of(r).governor().core_comm(comm_core(r));

  obs_reg_ = &obs::Registry::global();
  obs_eager_ = &obs_reg_->counter("mpi.world.eager_msgs");
  obs_rndv_ = &obs_reg_->counter("mpi.world.rndv_msgs");
  obs_bytes_ = &obs_reg_->counter("mpi.world.bytes_sent");
  obs_posted_depth_ = &obs_reg_->histogram("mpi.world.posted_depth");
  obs_unexpected_depth_ = &obs_reg_->histogram("mpi.world.unexpected_depth");
  obs_dma_rate_ = &obs_reg_->histogram("mpi.world.dma_rate_Bps");
  obs_retransmits_ = &obs_reg_->counter("mpi.retransmits");
  obs_timeouts_ = &obs_reg_->counter("mpi.timeouts");
  obs_rank_tracks_.reserve(ranks_.size());
  for (int r = 0; r < size(); ++r)
    obs_rank_tracks_.push_back(obs_reg_->tracer().track("mpi.rank" + std::to_string(r)));
  label_pio_copy_ = engine().intern("pio-copy");
  label_dma_ = engine().intern("dma");

  faults_ = &cluster_.faults();
  // A NIC blackout kills every rendezvous DMA touching the node: cancel the
  // flow and wake the sender so its retransmit timer takes over.
  faults_->on_blackout([this](int node) {
    for (auto& d : inflight_dma_) {
      if (d.abort->is_set()) continue;
      if (d.src_node != node && d.dst_node != node) continue;
      if (!d.act->finished()) cluster_.model().cancel(d.act);
      d.abort->set();
    }
  });
  // Watchdog reports name receives that never matched (the classic deadlock
  // diagnostic: which rank is waiting for a message that never came).
  engine().add_stall_inspector([this](std::vector<std::string>& out) {
    for (int r = 0; r < size(); ++r)
      for (const PostedRecv& p : ranks_[static_cast<std::size_t>(r)].posted)
        out.push_back("mpi rank " + std::to_string(r) + " posted recv (src=" +
                      std::to_string(p.src) + ", tag=" + std::to_string(p.tag) +
                      ") never matched");
  });
}

int World::comm_core(int rank) const { return cfg(rank).comm_core; }

int World::comm_numa(int rank) const {
  const RankConfig& c = cfg(rank);
  return cluster_.machine(c.node).config().numa_of_core(c.comm_core);
}

double World::sw_delay(int rank, double cycles) {
  double f = machine_of(rank).governor().core_freq(comm_core(rank));
  const auto& np = nic_of(rank).params();
  return cycles / f * cluster_.rng().jitter(np.noise_rel) +
         ranks_[static_cast<std::size_t>(rank)].progress_overhead;
}

double World::control_delay() {
  const auto& np = cluster_.net();
  return np.control_latency * cluster_.rng().jitter(np.noise_rel);
}

double World::pio_latency(int rank, std::size_t bytes) {
  hw::Machine& m = machine_of(rank);
  net::Nic& nic = nic_of(rank);
  const auto& np = nic.params();
  const auto& cfg_m = m.config();

  sim::Resource* nic_ctrl = m.mem_ctrl(nic.numa());
  // Doorbell/PIO processing contends with the NIC-socket memory system only
  // when issued from that socket (same CHA-ingress argument as in
  // Machine::mem_access_latency); a far comm thread pays on the socket link.
  const bool comm_on_nic_socket = cfg_m.socket_of_core(comm_core(rank)) == nic.socket();
  double t = np.pio_base_latency * (comm_on_nic_socket ? m.inflation(nic_ctrl) : 1.0) *
             m.uncore_latency_scale(nic.socket());
  double f = m.governor().core_freq(comm_core(rank));
  double chunks = std::ceil(static_cast<double>(bytes) / static_cast<double>(np.pio_chunk));
  t += chunks * static_cast<double>(np.pio_chunk) * np.pio_cycles_per_byte / f;
  if (cfg_m.socket_of_core(comm_core(rank)) != nic.socket())
    t += np.pio_socket_crossings * m.cross_socket_hop_latency();
  return t;
}

RequestPtr World::isend(int src_rank, int dst_rank, int tag, MsgView msg) {
  auto req = std::make_shared<Request>(engine());
  engine().spawn(send_process(src_rank, dst_rank, tag, msg, req));
  return req;
}

RequestPtr World::irecv(int rank_id, int src_rank, int tag, MsgView msg) {
  auto req = std::make_shared<Request>(engine());
  RankState& R = rank(rank_id);
  // Tag-matching pressure at post time (perf-counter view of the MPI queues).
  obs_posted_depth_->record(static_cast<double>(R.posted.size()));
  obs_unexpected_depth_->record(static_cast<double>(R.unexpected.size()));
  // Try the unexpected queue first, in arrival order.
  for (auto it = R.unexpected.begin(); it != R.unexpected.end(); ++it) {
    if (!matches(src_rank, tag, (*it)->src, (*it)->tag)) continue;
    ArrivalPtr arr = *it;
    R.unexpected.erase(it);
    arr->recv_msg = msg;
    arr->recv_req = req;
    arr->matched->set();
    if (arr->status != MpiStatus::kOk) {
      req->fail(arr->status);  // poison: the sender already gave up
      return req;
    }
    if (arr->eager) engine().spawn(finish_eager_recv(rank_id, arr, /*from_unexpected=*/true));
    return req;
  }
  R.posted.push_back(PostedRecv{src_rank, tag, msg, req});
  return req;
}

void World::arrive(int dst_rank, const ArrivalPtr& arrival) {
  RankState& R = rank(dst_rank);
  for (auto it = R.posted.begin(); it != R.posted.end(); ++it) {
    if (!matches(it->src, it->tag, arrival->src, arrival->tag)) continue;
    arrival->recv_msg = it->msg;
    arrival->recv_req = it->req;
    R.posted.erase(it);
    arrival->matched->set();
    if (arrival->status != MpiStatus::kOk) {
      arrival->recv_req->fail(arrival->status);  // poison: sender gave up
      return;
    }
    if (arrival->eager)
      engine().spawn(finish_eager_recv(dst_rank, arrival, /*from_unexpected=*/false));
    return;
  }
  R.unexpected.push_back(arrival);
  obs_unexpected_depth_->record(static_cast<double>(R.unexpected.size()));
}

sim::Coro World::finish_eager_recv(int dst_rank, ArrivalPtr arrival, bool from_unexpected) {
  const auto& np = nic_of(dst_rank).params();
  hw::Machine& m = machine_of(dst_rank);
  const sim::Time recv_t0 = engine().now();
  double t = sw_delay(dst_rank, np.recv_overhead_cycles);
  // Messages past the latency cutoff land in the user buffer through DRAM;
  // tiny payloads arrive with the completion and stay in cache.
  if (arrival->bytes > np.pio_latency_cutoff)
    t += m.mem_access_latency(comm_numa(dst_rank), arrival->recv_msg.data_numa);
  // Reliable transport verifies a checksum on every delivered payload.
  if (faults_->wire_active()) t += crc_delay(dst_rank, arrival->bytes);
  if (from_unexpected) {
    // The payload was parked in a bounce buffer near the NIC; the comm
    // core copies it out.
    double f = m.governor().core_freq(comm_core(dst_rank));
    t += static_cast<double>(arrival->bytes) * np.pio_cycles_per_byte / f;
  }
  co_await engine().sleep(t);
  obs::Tracer& tracer = obs_reg_->tracer();
  if (tracer.on())
    tracer.span(obs_rank_tracks_[static_cast<std::size_t>(dst_rank)],
                (from_unexpected ? "eager-recv (unexpected) tag=" : "eager-recv tag=") +
                    std::to_string(arrival->tag),
                recv_t0, engine().now());
  arrival->recv_req->done().set();
}

sim::Coro World::send_process(int src_rank, int dst_rank, int tag, MsgView msg,
                              RequestPtr sreq) {
  RankState& S = rank(src_rank);
  hw::Machine& M = machine_of(src_rank);
  net::Nic& snic = nic_of(src_rank);
  const auto& np = snic.params();
  const sim::Time t0 = engine().now();

  co_await engine().sleep(sw_delay(src_rank, np.send_overhead_cycles));

  auto arrival = std::make_shared<Arrival>();
  arrival->src = src_rank;
  arrival->tag = tag;
  arrival->bytes = msg.bytes;
  arrival->matched = std::make_unique<sim::OneShotEvent>(engine());

  if (reliable()) {
    // Fault model armed: both protocols switch to the acknowledged
    // transport with retransmit timers and bounded retry budgets.
    if (msg.bytes <= np.eager_threshold)
      engine().spawn(reliable_eager_send(src_rank, dst_rank, tag, msg, sreq, arrival, t0));
    else
      engine().spawn(reliable_rndv_send(src_rank, dst_rank, tag, msg, sreq, arrival, t0));
    co_return;
  }

  if (msg.bytes <= np.eager_threshold) {
    arrival->eager = true;
    // Gather the payload from its NUMA node into the store pipeline.
    co_await engine().sleep(M.mem_access_latency(comm_numa(src_rank), msg.data_numa) *
                            cluster_.rng().jitter(np.noise_rel));
    if (msg.bytes <= np.pio_latency_cutoff) {
      co_await engine().sleep(pio_latency(src_rank, msg.bytes));
    } else {
      // CPU-driven pipelined copy: consumes memory bandwidth on the data
      // path and PCIe on the way out, capped by the core's copy speed.
      sim::ActivitySpec copy;
      copy.label = label_pio_copy_;
      copy.profile_class = sim::kClassComm;
      copy.work = static_cast<double>(msg.bytes);
      for (sim::Resource* r : M.mem_path(comm_numa(src_rank), msg.data_numa))
        copy.demands.push_back({r, 1.0});
      copy.demands.push_back({snic.dma_engine(), 1.0});
      double f = M.governor().core_freq(comm_core(src_rank));
      copy.rate_cap = f / np.pio_cycles_per_byte;
      snic.dma_begin();
      co_await *M.model().start(copy);
      snic.dma_end();
      co_await engine().sleep(pio_latency(src_rank, np.pio_chunk));  // doorbell
    }
    // Local completion: buffer reusable once handed to the NIC.
    S.stats.bytes += static_cast<double>(msg.bytes);
    S.stats.busy_time += engine().now() - t0;
    obs_eager_->add(1);
    obs_bytes_->add(static_cast<double>(msg.bytes));
    if (obs_reg_->tracer().on())
      obs_reg_->tracer().span(obs_rank_tracks_[static_cast<std::size_t>(src_rank)],
                              "eager tag=" + std::to_string(tag) + " B=" +
                                  std::to_string(msg.bytes),
                              t0, engine().now());
    if (message_trace_enabled_)
      message_trace_.push_back(
          {src_rank, dst_rank, tag, msg.bytes, true, t0, t0, engine().now()});
    sreq->done().set();

    double wire_time = np.wire_latency * cluster_.rng().jitter(np.noise_rel) +
                       static_cast<double>(msg.bytes) / np.wire_bw;
    engine().spawn([](World* w, int dst, ArrivalPtr arr, double t) -> sim::Coro {
      co_await w->engine().sleep(t);
      w->arrive(dst, arr);
    }(this, dst_rank, arrival, wire_time));
    co_return;
  }

  // ---- rendezvous ---------------------------------------------------------
  arrival->eager = false;
  const sim::Time hs_start = engine().now();
  co_await engine().sleep(control_delay());  // RTS travels to the receiver
  arrive(dst_rank, arrival);
  co_await arrival->matched->wait();         // receiver posted a matching recv
  co_await engine().sleep(control_delay());  // CTS travels back
  const sim::Time hs_end = engine().now();

  net::Nic& dnic = nic_of(dst_rank);
  if (msg.buffer_id != 0 && !snic.registered(msg.buffer_id)) {
    co_await engine().sleep(snic.registration_cost(msg.bytes));
    snic.register_buffer(msg.buffer_id);
  }
  if (arrival->recv_msg.buffer_id != 0 && !dnic.registered(arrival->recv_msg.buffer_id)) {
    co_await engine().sleep(dnic.registration_cost(arrival->recv_msg.bytes));
    dnic.register_buffer(arrival->recv_msg.buffer_id);
  }
  snic.refresh_dma_capacity();
  dnic.refresh_dma_capacity();

  // §6 sending-bandwidth metric: "time spent to send data over the
  // network" — the wire/DMA phase, not the wait for the receiver to show
  // up (which is application-dependent and constant across worker counts).
  const sim::Time transfer_start = engine().now();

  hw::Machine& D = machine_of(dst_rank);
  sim::ActivitySpec dma;
  dma.label = label_dma_;
  dma.profile_class = sim::kClassComm;
  dma.work = static_cast<double>(msg.bytes);
  dma.weight = M.config().nic_dma_weight;
  for (sim::Resource* r : M.mem_path(snic.numa(), msg.data_numa)) dma.demands.push_back({r, 1.0});
  dma.demands.push_back({snic.dma_engine(), 1.0});
  for (sim::Resource* r : cluster_.fabric_path(cfg(src_rank).node, cfg(dst_rank).node))
    dma.demands.push_back({r, 1.0});
  dma.demands.push_back({dnic.dma_engine(), 1.0});
  for (sim::Resource* r : D.mem_path(dnic.numa(), arrival->recv_msg.data_numa))
    dma.demands.push_back({r, 1.0});
  snic.dma_begin();
  dnic.dma_begin();
  co_await *M.model().start(dma);
  snic.dma_end();
  dnic.dma_end();

  S.stats.bytes += static_cast<double>(msg.bytes);
  S.stats.busy_time += engine().now() - transfer_start;
  obs_rndv_->add(1);
  obs_bytes_->add(static_cast<double>(msg.bytes));
  if (engine().now() > transfer_start)
    obs_dma_rate_->record(static_cast<double>(msg.bytes) / (engine().now() - transfer_start));
  if (obs_reg_->tracer().on()) {
    // Per-message lifecycle: the whole rendezvous, with the RTS/CTS
    // handshake and the DMA window nested inside (lane spill in the
    // exporter keeps concurrent messages legible).
    obs::Tracer& tracer = obs_reg_->tracer();
    obs::TrackId track = obs_rank_tracks_[static_cast<std::size_t>(src_rank)];
    std::string id = " tag=" + std::to_string(tag) + " B=" + std::to_string(msg.bytes);
    tracer.span(track, "rndv" + id, t0, engine().now());
    tracer.span(track, "handshake" + id, hs_start, hs_end);
    tracer.span(track, "dma" + id, transfer_start, engine().now());
  }
  if (message_trace_enabled_)
    message_trace_.push_back(
        {src_rank, dst_rank, tag, msg.bytes, false, t0, transfer_start, engine().now()});
  sreq->done().set();

  co_await engine().sleep(sw_delay(dst_rank, np.recv_overhead_cycles));
  arrival->recv_req->done().set();
}

// ---- reliable transport -----------------------------------------------------

bool World::reliable() const { return faults_->wire_active(); }

double World::initial_rto(std::size_t bytes) const {
  // LogGP-derived: the earliest instant an ack could possibly return is one
  // serialization plus a round trip of wire and control latency; the safety
  // factor absorbs queueing, jitter and receiver-side software overheads.
  const auto& np = cluster_.net();
  return faults_->reliability.rto_safety *
         (2.0 * (np.wire_latency + np.control_latency) +
          static_cast<double>(bytes) / np.wire_bw);
}

double World::crc_delay(int rank_id, std::size_t bytes) {
  const auto& np = nic_of(rank_id).params();
  double f = machine_of(rank_id).governor().core_freq(comm_core(rank_id));
  return static_cast<double>(bytes) * np.crc_cycles_per_byte / f;
}

void World::register_dma(sim::ActivityPtr act, sim::OneShotEvent* abort, int src_node,
                         int dst_node) {
  inflight_dma_.push_back({std::move(act), abort, src_node, dst_node});
}

void World::fail_rndv(int dst_rank, const ArrivalPtr& arrival, const RequestPtr& sreq,
                      MpiStatus status, bool rts_delivered) {
  // Fail the whole operation: the sender surfaces the status, and whichever
  // side the receiver reached (matched, parked, or nothing yet) is poisoned
  // so its receive fails too instead of waiting forever.
  obs_timeouts_->add(1);
  arrival->status = status;
  if (arrival->recv_req) {
    arrival->recv_req->fail(status);
  } else if (!rts_delivered) {
    arrive(dst_rank, arrival);  // poison
  }
  sreq->fail(status);
}

void World::unregister_dma(const sim::OneShotEvent* abort) {
  for (auto it = inflight_dma_.begin(); it != inflight_dma_.end(); ++it)
    if (it->abort == abort) {
      inflight_dma_.erase(it);
      return;
    }
}

sim::Coro World::reliable_eager_send(int src_rank, int dst_rank, int tag, MsgView msg,
                                     RequestPtr sreq, ArrivalPtr arrival, sim::Time t0) {
  RankState& S = rank(src_rank);
  hw::Machine& M = machine_of(src_rank);
  net::Nic& snic = nic_of(src_rank);
  const auto& np = snic.params();
  const int src_node = cfg(src_rank).node;
  const int dst_node = cfg(dst_rank).node;
  const auto& rel = faults_->reliability;

  arrival->eager = true;
  // Gather the payload once; retransmits resend from the NIC-side staging.
  co_await engine().sleep(M.mem_access_latency(comm_numa(src_rank), msg.data_numa) *
                          cluster_.rng().jitter(np.noise_rel));

  double rto = initial_rto(msg.bytes);
  bool delivered = false;  // suppress duplicates when only the ack was lost
  bool acked = false;
  MpiStatus fail_status = MpiStatus::kTimedOut;

  for (int attempt = 0; attempt <= rel.max_retries; ++attempt) {
    if (attempt > 0) obs_retransmits_->add(1);
    // Per-attempt injection cost on the comm core (same as the legacy path).
    if (msg.bytes <= np.pio_latency_cutoff) {
      co_await engine().sleep(pio_latency(src_rank, msg.bytes));
    } else {
      sim::ActivitySpec copy;
      copy.label = label_pio_copy_;
      copy.profile_class = sim::kClassComm;
      copy.work = static_cast<double>(msg.bytes);
      for (sim::Resource* r : M.mem_path(comm_numa(src_rank), msg.data_numa))
        copy.demands.push_back({r, 1.0});
      copy.demands.push_back({snic.dma_engine(), 1.0});
      double f = M.governor().core_freq(comm_core(src_rank));
      copy.rate_cap = f / np.pio_cycles_per_byte;
      snic.dma_begin();
      co_await *M.model().start(copy);
      snic.dma_end();
      co_await engine().sleep(pio_latency(src_rank, np.pio_chunk));  // doorbell
    }

    // Fate of this attempt: a blacked-out NIC passes nothing; otherwise the
    // wire may drop or corrupt the payload (receiver CRC rejects the latter).
    const bool blackout = faults_->blacked_out(src_node) || faults_->blacked_out(dst_node);
    const bool lost = blackout || faults_->draw_loss(cluster_.rng());
    const bool corrupt = !lost && faults_->draw_corrupt(cluster_.rng());
    if (!lost && !corrupt) {
      const double wire_time = np.wire_latency * cluster_.rng().jitter(np.noise_rel) +
                               static_cast<double>(msg.bytes) / np.wire_bw;
      if (!delivered) {
        delivered = true;
        engine().spawn([](World* w, int dst, ArrivalPtr arr, double t) -> sim::Coro {
          co_await w->engine().sleep(t);
          w->arrive(dst, arr);
        }(this, dst_rank, arrival, wire_time));
      }
      // Control-sized ack rides back on the same (possibly lossy) wire.
      const bool ack_lost = blackout || faults_->draw_loss(cluster_.rng());
      if (!ack_lost) {
        co_await engine().sleep(wire_time + control_delay());
        acked = true;
        break;
      }
      fail_status = MpiStatus::kTimedOut;
    } else {
      fail_status = corrupt ? MpiStatus::kCorrupted : MpiStatus::kTimedOut;
    }
    // No ack: the retransmit timer expires, with exponential backoff.
    co_await engine().sleep(rto);
    rto = std::min(rto * 2.0, rel.rto_max);
  }

  if (!acked) {
    obs_timeouts_->add(1);
    if (!delivered) {
      // Poison arrival so a matching receive fails instead of hanging.
      arrival->status = fail_status;
      arrive(dst_rank, arrival);
    }
    sreq->fail(fail_status);
    co_return;
  }

  S.stats.bytes += static_cast<double>(msg.bytes);
  S.stats.busy_time += engine().now() - t0;
  obs_eager_->add(1);
  obs_bytes_->add(static_cast<double>(msg.bytes));
  if (obs_reg_->tracer().on())
    obs_reg_->tracer().span(obs_rank_tracks_[static_cast<std::size_t>(src_rank)],
                            "eager tag=" + std::to_string(tag) + " B=" +
                                std::to_string(msg.bytes),
                            t0, engine().now());
  if (message_trace_enabled_)
    message_trace_.push_back({src_rank, dst_rank, tag, msg.bytes, true, t0, t0, engine().now()});
  sreq->done().set();
}

sim::Coro World::reliable_rndv_send(int src_rank, int dst_rank, int tag, MsgView msg,
                                    RequestPtr sreq, ArrivalPtr arrival, sim::Time t0) {
  RankState& S = rank(src_rank);
  hw::Machine& M = machine_of(src_rank);
  net::Nic& snic = nic_of(src_rank);
  const auto& np = snic.params();
  const int src_node = cfg(src_rank).node;
  const int dst_node = cfg(dst_rank).node;
  const auto& rel = faults_->reliability;

  arrival->eager = false;
  const sim::Time hs_start = engine().now();

  // ---- RTS: control-sized, link-level acked --------------------------------
  double rto = initial_rto(0);
  bool rts_delivered = false;
  bool rts_acked = false;
  for (int attempt = 0; attempt <= rel.max_retries; ++attempt) {
    if (attempt > 0) obs_retransmits_->add(1);
    const bool blackout = faults_->blacked_out(src_node) || faults_->blacked_out(dst_node);
    const bool lost = blackout || faults_->draw_loss(cluster_.rng());
    if (!lost) {
      const double d = control_delay();
      if (!rts_delivered) {
        rts_delivered = true;
        engine().spawn([](World* w, int dst, ArrivalPtr arr, double t) -> sim::Coro {
          co_await w->engine().sleep(t);
          w->arrive(dst, arr);
        }(this, dst_rank, arrival, d));
      }
      const bool ack_lost = blackout || faults_->draw_loss(cluster_.rng());
      if (!ack_lost) {
        co_await engine().sleep(2.0 * d);
        rts_acked = true;
        break;
      }
    }
    co_await engine().sleep(rto);
    rto = std::min(rto * 2.0, rel.rto_max);
  }
  if (!rts_acked) {
    fail_rndv(dst_rank, arrival, sreq, MpiStatus::kTimedOut, rts_delivered);
    co_return;
  }

  // The wait for a matching receive is application behaviour, not a fault:
  // it stays unbounded, exactly as in the legacy protocol.
  co_await arrival->matched->wait();

  // ---- CTS: receiver-driven retransmit, same control-scale timer -----------
  rto = initial_rto(0);
  bool cts_ok = false;
  for (int attempt = 0; attempt <= rel.max_retries; ++attempt) {
    if (attempt > 0) obs_retransmits_->add(1);
    const bool blackout = faults_->blacked_out(src_node) || faults_->blacked_out(dst_node);
    const bool lost = blackout || faults_->draw_loss(cluster_.rng());
    if (!lost) {
      co_await engine().sleep(control_delay());
      cts_ok = true;
      break;
    }
    co_await engine().sleep(rto);
    rto = std::min(rto * 2.0, rel.rto_max);
  }
  if (!cts_ok) {
    fail_rndv(dst_rank, arrival, sreq, MpiStatus::kTimedOut, rts_delivered);
    co_return;
  }
  const sim::Time hs_end = engine().now();

  net::Nic& dnic = nic_of(dst_rank);
  if (msg.buffer_id != 0 && !snic.registered(msg.buffer_id)) {
    co_await engine().sleep(snic.registration_cost(msg.bytes));
    snic.register_buffer(msg.buffer_id);
  }
  if (arrival->recv_msg.buffer_id != 0 && !dnic.registered(arrival->recv_msg.buffer_id)) {
    co_await engine().sleep(dnic.registration_cost(arrival->recv_msg.bytes));
    dnic.register_buffer(arrival->recv_msg.buffer_id);
  }
  snic.refresh_dma_capacity();
  dnic.refresh_dma_capacity();

  const sim::Time transfer_start = engine().now();
  hw::Machine& D = machine_of(dst_rank);

  // ---- DMA with whole-transfer retransmit ----------------------------------
  // A blackout mid-transfer cancels the flow (frozen progress, completion
  // never fires); the abort event wakes us and the timer takes over.
  rto = initial_rto(msg.bytes);
  MpiStatus fail_status = MpiStatus::kTimedOut;
  bool transferred = false;
  for (int attempt = 0; attempt <= rel.max_retries; ++attempt) {
    if (attempt > 0) obs_retransmits_->add(1);
    if (faults_->blacked_out(src_node) || faults_->blacked_out(dst_node)) {
      fail_status = MpiStatus::kTimedOut;
      co_await engine().sleep(rto);
      rto = std::min(rto * 2.0, rel.rto_max);
      continue;
    }
    sim::ActivitySpec dma;
    dma.label = label_dma_;
    dma.profile_class = sim::kClassComm;
    dma.work = static_cast<double>(msg.bytes);
    dma.weight = M.config().nic_dma_weight;
    for (sim::Resource* r : M.mem_path(snic.numa(), msg.data_numa))
      dma.demands.push_back({r, 1.0});
    dma.demands.push_back({snic.dma_engine(), 1.0});
    for (sim::Resource* r : cluster_.fabric_path(src_node, dst_node))
      dma.demands.push_back({r, 1.0});
    dma.demands.push_back({dnic.dma_engine(), 1.0});
    for (sim::Resource* r : D.mem_path(dnic.numa(), arrival->recv_msg.data_numa))
      dma.demands.push_back({r, 1.0});
    sim::ActivityPtr act = M.model().start(dma);
    sim::OneShotEvent abort(engine());
    snic.dma_begin();
    dnic.dma_begin();
    register_dma(act, &abort, src_node, dst_node);
    // Named awaitable: an initializer_list inside the co_await expression
    // trips a GCC coroutine-frame bug ("array used as initializer").
    sim::WhenAny done_or_abort = sim::when_any(engine(), {&act->done(), &abort});
    co_await done_or_abort;
    unregister_dma(&abort);
    snic.dma_end();
    dnic.dma_end();
    if (!act->finished()) {
      // Cancelled by a blackout: back off, then restart from scratch.
      fail_status = MpiStatus::kTimedOut;
      co_await engine().sleep(rto);
      rto = std::min(rto * 2.0, rel.rto_max);
      continue;
    }
    if (faults_->draw_corrupt(cluster_.rng())) {
      fail_status = MpiStatus::kCorrupted;  // receiver CRC rejects the data
      co_await engine().sleep(rto);
      rto = std::min(rto * 2.0, rel.rto_max);
      continue;
    }
    const bool fin_lost = faults_->blacked_out(src_node) || faults_->blacked_out(dst_node) ||
                          faults_->draw_loss(cluster_.rng());
    if (fin_lost) {
      fail_status = MpiStatus::kTimedOut;
      co_await engine().sleep(rto);
      rto = std::min(rto * 2.0, rel.rto_max);
      continue;
    }
    co_await engine().sleep(control_delay());  // completion notification
    transferred = true;
    break;
  }
  if (!transferred) {
    fail_rndv(dst_rank, arrival, sreq, fail_status, rts_delivered);
    co_return;
  }

  // Stats cover transfer_start..now, retransmissions included — exactly the
  // bandwidth degradation the fault sweep measures.
  S.stats.bytes += static_cast<double>(msg.bytes);
  S.stats.busy_time += engine().now() - transfer_start;
  obs_rndv_->add(1);
  obs_bytes_->add(static_cast<double>(msg.bytes));
  if (engine().now() > transfer_start)
    obs_dma_rate_->record(static_cast<double>(msg.bytes) / (engine().now() - transfer_start));
  if (obs_reg_->tracer().on()) {
    obs::Tracer& tracer = obs_reg_->tracer();
    obs::TrackId track = obs_rank_tracks_[static_cast<std::size_t>(src_rank)];
    std::string id = " tag=" + std::to_string(tag) + " B=" + std::to_string(msg.bytes);
    tracer.span(track, "rndv" + id, t0, engine().now());
    tracer.span(track, "handshake" + id, hs_start, hs_end);
    tracer.span(track, "dma" + id, transfer_start, engine().now());
  }
  if (message_trace_enabled_)
    message_trace_.push_back(
        {src_rank, dst_rank, tag, msg.bytes, false, t0, transfer_start, engine().now()});
  sreq->done().set();

  co_await engine().sleep(sw_delay(dst_rank, np.recv_overhead_cycles) +
                          crc_delay(dst_rank, msg.bytes));
  arrival->recv_req->done().set();
}

}  // namespace cci::mpi
