#include "mpi/loggp.hpp"

#include <cmath>

#include "hw/frequency_governor.hpp"
#include "mpi/pingpong.hpp"
#include "trace/stats.hpp"

namespace cci::mpi {

std::vector<double> measure_one_way_times(World& world, const std::vector<std::size_t>& sizes,
                                          int iterations, int tag_base) {
  std::vector<double> times;
  int tag = tag_base;
  for (std::size_t bytes : sizes) {
    PingPongOptions opt;
    opt.bytes = bytes;
    opt.iterations = bytes >= (1u << 20) ? std::max(3, iterations / 3) : iterations;
    opt.warmup = 2;
    opt.tag = tag;
    tag += 10;
    PingPong pp(world, 0, 1, opt);
    pp.start();
    world.engine().run();
    times.push_back(trace::Stats::of(pp.latencies()).median);
  }
  return times;
}

LogGPParams fit_loggp(const std::vector<std::size_t>& sizes, const std::vector<double>& times,
                      double overhead_fraction) {
  LogGPParams p;
  if (sizes.empty()) return p;

  // G: least-squares slope over the large-message points (>= 1 MB), where
  // per-byte cost dominates and the protocol is stable.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] < (1u << 20)) continue;
    double x = static_cast<double>(sizes[i]);
    sx += x;
    sy += times[i];
    sxx += x * x;
    sxy += x * times[i];
    ++n;
  }
  if (n >= 2) {
    double denom = n * sxx - sx * sx;
    p.gap_per_byte = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
    double intercept = (sy - p.gap_per_byte * sx) / n;
    double rss = 0.0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (sizes[i] < (1u << 20)) continue;
      double pred = intercept + p.gap_per_byte * static_cast<double>(sizes[i]);
      rss += (times[i] - pred) * (times[i] - pred);
    }
    p.fit_residual = std::sqrt(rss / n);
  }

  // Intercept from the smallest message: L + 2o.
  double t0 = times.front();
  p.overhead = overhead_fraction * t0 / 2.0;
  p.latency = t0 - 2.0 * p.overhead;
  return p;
}

LogGPParams fit_loggp_two_frequencies(net::Cluster& cluster, double f_lo, double f_hi,
                                      int comm_core) {
  const std::vector<std::size_t> sizes{4,       64,      1024,     16384,
                                       1u << 20, 8u << 20, 32u << 20};
  auto measure_at = [&](double hz) {
    for (int node = 0; node < cluster.node_count(); ++node)
      cluster.machine(node).governor().pin_core_freq(hz);
    World world(cluster, {{0, comm_core}, {1, comm_core}});
    return measure_one_way_times(world, sizes, 15,
                                 40000 + static_cast<int>(hz / 1e6));
  };
  auto t_lo = measure_at(f_lo);
  auto t_hi = measure_at(f_hi);

  // t0 = L + 2 o(f) with o = c / f: two equations, two unknowns.
  double t0_lo = t_lo.front();
  double t0_hi = t_hi.front();
  double c2 = (t0_lo - t0_hi) / (1.0 / f_lo - 1.0 / f_hi);  // 2 * cycles
  LogGPParams p = fit_loggp(sizes, t_hi, /*overhead_fraction=*/0.0);
  p.overhead = 0.5 * c2 / f_hi;
  p.latency = t0_hi - c2 / f_hi;
  return p;
}

}  // namespace cci::mpi
