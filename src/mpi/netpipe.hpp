// NetPIPE-style curve driver (§2.1: "We use the same metrics as NetPIPE").
//
// Sweeps message sizes with perturbations around each power of two (the
// NetPIPE signature, catching protocol-threshold cliffs), measures half
// round-trip latency and derived bandwidth, and reports the curve.
#pragma once

#include <cstddef>
#include <vector>

#include "mpi/world.hpp"
#include "trace/stats.hpp"

namespace cci::mpi {

struct NetpipeOptions {
  std::size_t min_bytes = 4;
  std::size_t max_bytes = 64u << 20;
  /// Perturbation around each power of two (NetPIPE uses +-3 bytes by
  /// default; larger values probe alignment/protocol sensitivity).
  std::size_t perturbation = 3;
  int iterations = 12;
  int warmup = 2;
  int tag_base = 30000;
};

struct NetpipePoint {
  std::size_t bytes;
  trace::Stats latency;     ///< half RTT
  double bandwidth = 0.0;   ///< bytes / median latency
};

struct NetpipeCurve {
  std::vector<NetpipePoint> points;
  /// Size with the highest measured bandwidth.
  [[nodiscard]] std::size_t best_size() const;
  [[nodiscard]] double peak_bandwidth() const;
  /// Smallest size achieving half the peak bandwidth (NetPIPE's n1/2).
  [[nodiscard]] std::size_t half_peak_size() const;
  /// Detect protocol cliffs: sizes where latency jumps by more than
  /// `factor` against the previous point (e.g. the rendezvous switch).
  [[nodiscard]] std::vector<std::size_t> latency_cliffs(double factor = 1.6) const;
};

/// Run the sweep between ranks 0 and 1 (drives the world's engine).
NetpipeCurve run_netpipe(World& world, const NetpipeOptions& options = {});

}  // namespace cci::mpi
