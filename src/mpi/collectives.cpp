#include "mpi/collectives.hpp"

namespace cci::mpi {

namespace {
/// Virtual rank relative to the root (so the binomial tree can be rooted
/// anywhere).
int vrank(int rank, int root, int size) { return (rank - root + size) % size; }
int unvrank(int v, int root, int size) { return (v + root) % size; }
}  // namespace

sim::Coro Coll::bcast(int rank, int root, MsgView msg, sim::OneShotEvent* done) {
  const int size = world_.size();
  const int v = vrank(rank, root, size);
  // Binomial tree: in round k, ranks with v < 2^k send to v + 2^k.
  int received_from = -1;
  for (int dist = 1; dist < size; dist <<= 1) {
    if (v >= dist && v < 2 * dist && received_from < 0) {
      int parent = unvrank(v - dist, root, size);
      co_await *world_.irecv(rank, parent, tag(0, parent), msg);
      received_from = parent;
    }
  }
  // Sending phase: after we hold the data (root holds it from the start).
  for (int dist = 1; dist < size; dist <<= 1) {
    if (v < dist && v + dist < size) {
      int child = unvrank(v + dist, root, size);
      co_await *world_.isend(rank, child, tag(0, rank), msg);
    }
  }
  if (done) done->set();
}

sim::Coro Coll::allgather(int rank, MsgView msg, sim::OneShotEvent* done) {
  const int size = world_.size();
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  // Ring: in step s, send the block received in step s-1 to the right.
  for (int step = 0; step < size - 1; ++step) {
    auto sreq = world_.isend(rank, right, tag(1 + step, rank), msg);
    auto rreq = world_.irecv(rank, left, tag(1 + step, left), msg);
    co_await *sreq;
    co_await *rreq;
  }
  if (done) done->set();
}

sim::Coro Coll::allreduce(int rank, MsgView msg, sim::OneShotEvent* done) {
  const int size = world_.size();
  // Recursive doubling over the largest power-of-two subset; leftover
  // ranks fold into a partner first and get the result at the end.
  int pof2 = 1;
  while (pof2 * 2 <= size) pof2 *= 2;
  const int rem = size - pof2;

  bool participates = true;
  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      // Fold into the odd partner, wait for the result afterwards.
      co_await *world_.isend(rank, rank + 1, tag(100, rank), msg);
      co_await *world_.irecv(rank, rank + 1, tag(200, rank + 1), msg);
      participates = false;
    } else {
      co_await *world_.irecv(rank, rank - 1, tag(100, rank - 1), msg);
    }
  }
  if (participates) {
    // Effective rank within the power-of-two group.
    int er = rank < 2 * rem ? rank / 2 : rank - rem;
    for (int mask = 1; mask < pof2; mask <<= 1) {
      int peer_er = er ^ mask;
      int peer = peer_er < rem ? peer_er * 2 + 1 : peer_er + rem;
      auto sreq = world_.isend(rank, peer, tag(300 + mask, rank), msg);
      auto rreq = world_.irecv(rank, peer, tag(300 + mask, peer), msg);
      co_await *sreq;
      co_await *rreq;
    }
    if (rank < 2 * rem) co_await *world_.isend(rank, rank - 1, tag(200, rank), msg);
  }
  if (done) done->set();
}

sim::Coro Coll::barrier(int rank, sim::OneShotEvent* done) {
  // A barrier is a zero-payload allreduce; run it as a child process.
  auto ref = world_.engine().spawn(allreduce(rank, MsgView{4, 0, 0}, nullptr));
  co_await ref;
  if (done) done->set();
}

}  // namespace cci::mpi
