// Collective operations over the mini-MPI.
//
// The paper scopes its measurements to point-to-point ping-pongs (§2.1)
// and leaves collectives out; we provide them as the natural library
// extension (every algorithm is built from the same isend/irecv paths, so
// all interference mechanisms apply).  Algorithms are the textbook ones:
//   * broadcast      — binomial tree
//   * reduce         — binomial tree (flat data combine cost charged)
//   * allgather      — ring
//   * allreduce      — recursive doubling (power-of-two ranks) or
//                      reduce + broadcast otherwise
//   * barrier        — zero-byte allreduce
//
// Each call is a coroutine to be awaited from a rank's process; `Coll`
// instances are cheap per-operation handles carrying the tag space.
#pragma once

#include <cstddef>
#include <memory>

#include "mpi/world.hpp"

namespace cci::mpi {

class Coll {
 public:
  /// `tag_base` namespaces this collective's messages; concurrent
  /// collectives on the same world must use distinct bases.
  explicit Coll(World& world, int tag_base = 70000) : world_(world), tag_base_(tag_base) {}

  /// Broadcast `bytes` from `root` — call from every rank's process.
  sim::Coro bcast(int rank, int root, MsgView msg, sim::OneShotEvent* done = nullptr);
  /// Ring allgather: every rank contributes `msg.bytes` and receives all.
  sim::Coro allgather(int rank, MsgView msg, sim::OneShotEvent* done = nullptr);
  /// Recursive-doubling allreduce on `msg.bytes` of payload.
  sim::Coro allreduce(int rank, MsgView msg, sim::OneShotEvent* done = nullptr);
  /// Barrier: 4-byte allreduce.
  sim::Coro barrier(int rank, sim::OneShotEvent* done = nullptr);

 private:
  /// Tag for a (phase, src) pair inside this collective.
  [[nodiscard]] int tag(int phase, int src) const {
    return tag_base_ + phase * 1024 + src;
  }

  World& world_;
  int tag_base_;
};

}  // namespace cci::mpi
