// Communication/computation overlap benchmark, after Denis & Trahay,
// "MPI Overlap: Benchmark and Analysis" (ICPP 2016) — reference [7] of the
// reproduced paper.
//
// Measures how well a nonblocking send hides behind computation:
//
//   t_comm    = isend + wait                       (no computation)
//   t_comp    = computation alone
//   t_overlap = isend + computation + wait
//
//   overlap ratio = (t_comm + t_comp - t_overlap) / min(t_comm, t_comp)
//
// 1.0 = perfect overlap, 0.0 = full serialization.  Negative values mean
// active interference (the paper's subject!): the transfer and the
// computation slow each other beyond mere serialization.
#pragma once

#include <memory>

#include "hw/workload.hpp"
#include "mpi/world.hpp"

namespace cci::mpi {

struct OverlapOptions {
  std::size_t bytes = 4 << 20;
  /// Kernel the overlapping computation runs on the *communication* node's
  /// computing cores (empty cores -> pure-wait overlap test).
  hw::KernelTraits kernel{"stream-triad", 2.0, 24.0, hw::VectorClass::kSse};
  std::vector<int> compute_cores;
  int data_numa = 0;
  int iterations = 8;
  int tag_base = 60000;
};

struct OverlapResult {
  double t_comm = 0.0;     ///< median isend+wait alone (s)
  double t_comp = 0.0;     ///< median computation alone (s)
  double t_overlap = 0.0;  ///< median combined (s)
  [[nodiscard]] double ratio() const {
    double denom = std::min(t_comm, t_comp);
    return denom > 0.0 ? (t_comm + t_comp - t_overlap) / denom : 0.0;
  }
};

/// Run the three-phase overlap measurement between ranks 0 and 1.
/// Blocking from the caller's perspective: drives the world's engine.
OverlapResult measure_overlap(World& world, const OverlapOptions& options);

}  // namespace cci::mpi
