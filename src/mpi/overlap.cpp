#include "mpi/overlap.hpp"

#include <algorithm>

#include "hw/frequency_governor.hpp"
#include "trace/stats.hpp"

namespace cci::mpi {

namespace {

/// One timed round: optionally a transfer, optionally a compute chunk.
struct Round {
  bool with_comm;
  bool with_comp;
  double elapsed = 0.0;
};

sim::Coro sender_side(World& world, const OverlapOptions& opt, Round& round, int tag,
                      sim::OneShotEvent& done) {
  sim::Engine& engine = world.engine();
  hw::Machine& m = world.machine_of(0);
  sim::Time t0 = engine.now();

  RequestPtr comm;
  if (round.with_comm)
    comm = world.isend(0, 1, tag, MsgView{opt.bytes, opt.data_numa, 0xE0});

  std::vector<sim::ActivityPtr> chunks;
  if (round.with_comp) {
    // Size the chunk to roughly the uncontended transfer time so the two
    // phases are comparable (the interesting regime for overlap).
    double t_ref = static_cast<double>(opt.bytes) / 10e9 + 20e-6;
    double cyc = hw::cycles_per_iter(m.config(), opt.kernel);
    double solo = std::min(m.config().core_freq_nominal_hz / cyc,
                           opt.kernel.bytes_per_iter > 0
                               ? m.config().per_core_mem_bw / opt.kernel.bytes_per_iter
                               : 1e30);
    for (int core : opt.compute_cores) {
      m.governor().core_busy(core, opt.kernel.vec);
      chunks.push_back(m.model().start(
          hw::make_compute_spec(m, core, opt.data_numa, opt.kernel, solo * t_ref)));
    }
  }
  for (auto& c : chunks) co_await *c;
  if (comm) co_await *comm;
  for (int core : opt.compute_cores)
    if (round.with_comp) m.governor().core_idle(core);

  round.elapsed = engine.now() - t0;
  done.set();
}

sim::Coro receiver_side(World& world, const OverlapOptions& opt, int tag) {
  co_await *world.irecv(1, 0, tag, MsgView{opt.bytes, opt.data_numa, 0xE1});
}

double run_phase(World& world, const OverlapOptions& opt, bool comm, bool comp, int tag0) {
  std::vector<double> samples;
  for (int it = 0; it < opt.iterations; ++it) {
    Round round{comm, comp};
    auto done = std::make_unique<sim::OneShotEvent>(world.engine());
    int tag = tag0 + it;
    if (comm) world.engine().spawn(receiver_side(world, opt, tag));
    world.engine().spawn(sender_side(world, opt, round, tag, *done));
    world.engine().run();
    if (it > 0) samples.push_back(round.elapsed);  // first round warms caches
  }
  return trace::Stats::of(std::move(samples)).median;
}

}  // namespace

OverlapResult measure_overlap(World& world, const OverlapOptions& opt) {
  OverlapResult result;
  result.t_comm = run_phase(world, opt, true, false, opt.tag_base);
  result.t_comp = run_phase(world, opt, false, true, opt.tag_base + 100);
  result.t_overlap = run_phase(world, opt, true, true, opt.tag_base + 200);
  return result;
}

}  // namespace cci::mpi
