#include "mpi/pingpong.hpp"

namespace cci::mpi {

PingPong::PingPong(World& world, int rank_a, int rank_b, PingPongOptions options)
    : world_(world), rank_a_(rank_a), rank_b_(rank_b), opt_(options) {
  complete_ = std::make_unique<sim::OneShotEvent>(world_.engine());
}

void PingPong::start() {
  world_.engine().spawn(side_a());
  world_.engine().spawn(side_b());
}

std::vector<double> PingPong::bandwidths() const {
  std::vector<double> bw;
  bw.reserve(latencies_.size());
  for (double lat : latencies_)
    bw.push_back(lat > 0 ? static_cast<double>(opt_.bytes) / lat : 0.0);
  return bw;
}

sim::Coro PingPong::side_a() {
  sim::Engine& engine = world_.engine();
  // Recycled buffers: constant ids keyed on the tag so that concurrent
  // PingPong instances (different phases) have distinct registrations.
  MsgView msg{opt_.bytes, opt_.data_numa_a,
              0xA000 + static_cast<std::uint64_t>(opt_.tag)};
  int iter = 0;
  while (true) {
    bool warmup = iter < opt_.warmup;
    if (!opt_.continuous && iter >= opt_.warmup + opt_.iterations) break;
    if (opt_.continuous && stop_ && !warmup) break;
    sim::Time t0 = engine.now();
    co_await *world_.isend(rank_a_, rank_b_, opt_.tag, msg);
    co_await *world_.irecv(rank_a_, rank_b_, opt_.tag + 1, msg);
    // In continuous (side-by-side) mode, an iteration that finished after
    // the stop request ran partly without the computation; drop it so the
    // samples reflect the contended window only.
    if (!warmup && !(opt_.continuous && stop_)) latencies_.push_back((engine.now() - t0) / 2.0);
    ++iter;
  }
  complete_->set();
  // Side B stays blocked on its next receive; the engine reclaims it when
  // the simulation ends.  Tags must therefore be unique per phase.
}

sim::Coro PingPong::side_b() {
  MsgView msg{opt_.bytes, opt_.data_numa_b,
              0xB000 + static_cast<std::uint64_t>(opt_.tag)};
  while (true) {
    co_await *world_.irecv(rank_b_, rank_a_, opt_.tag, msg);
    co_await *world_.isend(rank_b_, rank_a_, opt_.tag + 1, msg);
  }
}

}  // namespace cci::mpi
