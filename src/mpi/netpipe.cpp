#include "mpi/netpipe.hpp"

#include <algorithm>

#include "mpi/pingpong.hpp"

namespace cci::mpi {

std::size_t NetpipeCurve::best_size() const {
  std::size_t best = 0;
  double bw = 0.0;
  for (const auto& p : points)
    if (p.bandwidth > bw) {
      bw = p.bandwidth;
      best = p.bytes;
    }
  return best;
}

double NetpipeCurve::peak_bandwidth() const {
  double bw = 0.0;
  for (const auto& p : points) bw = std::max(bw, p.bandwidth);
  return bw;
}

std::size_t NetpipeCurve::half_peak_size() const {
  const double target = peak_bandwidth() / 2.0;
  for (const auto& p : points)
    if (p.bandwidth >= target) return p.bytes;
  return points.empty() ? 0 : points.back().bytes;
}

std::vector<std::size_t> NetpipeCurve::latency_cliffs(double factor) const {
  std::vector<std::size_t> cliffs;
  for (std::size_t i = 1; i < points.size(); ++i) {
    // A cliff is a latency jump far beyond the size growth itself.
    double size_ratio = static_cast<double>(points[i].bytes) /
                        static_cast<double>(points[i - 1].bytes);
    if (points[i].latency.median >
        points[i - 1].latency.median * std::max(factor, size_ratio * 1.2))
      cliffs.push_back(points[i].bytes);
  }
  return cliffs;
}

NetpipeCurve run_netpipe(World& world, const NetpipeOptions& opt) {
  // Size schedule: powers of two with +- perturbation, NetPIPE style.
  std::vector<std::size_t> sizes;
  for (std::size_t s = opt.min_bytes; s <= opt.max_bytes; s *= 2) {
    if (s > opt.min_bytes + opt.perturbation && opt.perturbation > 0)
      sizes.push_back(s - opt.perturbation);
    sizes.push_back(s);
    if (opt.perturbation > 0) sizes.push_back(s + opt.perturbation);
  }
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());

  NetpipeCurve curve;
  int tag = opt.tag_base;
  for (std::size_t bytes : sizes) {
    PingPongOptions ppo;
    ppo.bytes = bytes;
    ppo.iterations = bytes >= (1u << 20) ? std::max(3, opt.iterations / 3) : opt.iterations;
    ppo.warmup = opt.warmup;
    ppo.tag = tag;
    tag += 4;
    PingPong pp(world, 0, 1, ppo);
    pp.start();
    world.engine().run();
    NetpipePoint point;
    point.bytes = bytes;
    point.latency = trace::Stats::of(pp.latencies());
    point.bandwidth = point.latency.median > 0
                          ? static_cast<double>(bytes) / point.latency.median
                          : 0.0;
    curve.points.push_back(point);
  }
  return curve;
}

}  // namespace cci::mpi
