#include "model/analytic.hpp"

#include <algorithm>
#include <cmath>

#include "sim/maxmin.hpp"

namespace cci::model {

namespace {

/// Per-core uncontended memory demand (B/s) of the kernel: roofline-capped.
double core_demand(const ContentionInputs& in) {
  const auto& cfg = in.machine;
  if (in.kernel.bytes_per_iter <= 0.0) return 0.0;
  double cyc = hw::cycles_per_iter(cfg, in.kernel);
  double cpu_rate = cfg.core_freq_nominal_hz / cyc;  // iter/s, pipeline only
  double mem_rate = cfg.per_core_mem_bw / in.kernel.bytes_per_iter;
  return std::min(cpu_rate, mem_rate) * in.kernel.bytes_per_iter;
}

/// Peak network DMA rate absent contention.
double nic_demand(const ContentionInputs& in) {
  return std::min(in.network.wire_bw, in.network.dma_bw_max_uncore);
}

}  // namespace

ContentionPrediction predict_max_min(const ContentionInputs& in) {
  const auto& cfg = in.machine;
  // Resource table mirrors Machine::mem_path for the paper's single-node
  // allocation: data controller [0], per-socket mesh [1..s], cross link.
  sim::MaxMinProblem p;
  const std::size_t ctrl = 0;
  p.capacity.push_back(cfg.mem_bw_per_numa);
  const std::size_t mesh = 1;
  p.capacity.push_back(cfg.intra_socket_bw);
  const std::size_t xlink = 2;
  p.capacity.push_back(cfg.cross_socket_bw);
  const std::size_t nic_path = 3;
  p.capacity.push_back(nic_demand(in));  // wire/PCIe as one pipe

  const double demand = core_demand(in);
  for (int c = 0; demand > 0.0 && c < in.computing_cores; ++c) {
    sim::MaxMinFlow flow;
    flow.weight = 1.0;
    flow.rate_cap = demand;  // roofline/pipeline cap
    flow.entries.push_back({ctrl, 1.0});
    int numa = cfg.numa_of_core(c);
    if (numa != in.data_numa) {
      if (cfg.socket_of_numa(numa) == cfg.socket_of_numa(in.data_numa)) {
        flow.entries.push_back({mesh, 1.0});
      } else {
        flow.entries.push_back({xlink, 1.0});
      }
    }
    p.flows.push_back(std::move(flow));
  }
  sim::MaxMinFlow dma;
  dma.weight = cfg.nic_dma_weight;
  dma.entries.push_back({ctrl, 1.0});
  dma.entries.push_back({nic_path, 1.0});
  // The NIC reaches the data controller through the same on-chip fabric
  // the cores use.
  if (cfg.socket_of_numa(in.data_numa) != cfg.socket_of_numa(cfg.nic_numa)) {
    dma.entries.push_back({xlink, 1.0});
  } else if (in.data_numa != cfg.nic_numa) {
    dma.entries.push_back({mesh, 1.0});
  }
  p.flows.push_back(std::move(dma));

  auto sol = sim::solve_max_min(p);
  ContentionPrediction out;
  out.network_bw = sol.rate.back();
  if (in.computing_cores > 0) out.per_core_bw = sol.rate.front();
  return out;
}

ContentionPrediction predict_proportional(const ContentionInputs& in) {
  const auto& cfg = in.machine;
  const double d_core = core_demand(in);
  const double d_nic = nic_demand(in);
  const double total = d_core * in.computing_cores + d_nic;
  const double cap = cfg.mem_bw_per_numa;

  ContentionPrediction out;
  if (total <= cap) {
    out.network_bw = d_nic;
    out.per_core_bw = d_core;
    return out;
  }
  // Oversubscribed: every contender gets its demand-proportional share.
  out.network_bw = cap * d_nic / total;
  out.per_core_bw = cap * d_core / total;
  return out;
}

}  // namespace cci::model
