// Analytical baselines for memory-bandwidth sharing between computation
// and communication.
//
// Two closed-form comparators for the discrete-event simulator, in the
// spirit of Langguth, Cai & Sourouri, "Memory Bandwidth Contention:
// Communication vs Computation Tradeoffs in Supercomputers with Multicore
// Architectures" (ICPADS 2018) — reference [12] of the reproduced paper:
//
//  * `predict_max_min`     — static weighted bottleneck max-min over the
//    same resource graph the simulator uses, evaluated once at steady
//    state (no protocol dynamics, no latency effects);
//  * `predict_proportional` — proportional sharing: when a controller is
//    oversubscribed, every contender gets capacity * demand_i / Σdemand,
//    the model [12] effectively assumes.
//
// Comparing these against the simulator (bench/ablation_sharing_models)
// quantifies what the dynamic simulation adds over static models.
#pragma once

#include "hw/machine_config.hpp"
#include "hw/workload.hpp"
#include "net/network_params.hpp"

namespace cci::model {

struct ContentionInputs {
  hw::MachineConfig machine = hw::MachineConfig::henri();
  net::NetworkParams network = net::NetworkParams::ib_edr();
  int computing_cores = 0;
  /// Kernel run by every computing core.
  hw::KernelTraits kernel{"stream-triad", 2.0, 24.0, hw::VectorClass::kSse};
  /// NUMA node holding all data (computation and transfers).
  int data_numa = 0;
};

struct ContentionPrediction {
  double network_bw = 0.0;   ///< steady-state DMA bandwidth (B/s)
  double per_core_bw = 0.0;  ///< per-core compute memory bandwidth (B/s)
};

/// Static weighted bottleneck max-min (the simulator's allocation math,
/// without any dynamics).
ContentionPrediction predict_max_min(const ContentionInputs& in);

/// Proportional (demand-weighted) sharing on each saturated resource.
ContentionPrediction predict_proportional(const ContentionInputs& in);

}  // namespace cci::model
